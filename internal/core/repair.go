package core

import (
	"fmt"
	"sort"

	"sflow/internal/flow"
	"sflow/internal/overlay"
	"sflow/internal/require"
)

// RepairResult is the outcome of repairing a federation after failures.
type RepairResult struct {
	// Result is the re-federated flow graph over the surviving overlay.
	*Result
	// Affected lists the services whose placement had to be reconsidered,
	// ascending.
	Affected []int
	// Moved lists the services whose instance actually changed, ascending.
	Moved []int
}

// Repair re-federates a previously computed flow graph after a set of
// instances failed. Placements untouched by the failures are pinned so the
// repair is minimally disruptive: only services placed on failed instances —
// or whose streams were routed through them — are reconsidered. The source
// instance cannot be repaired away; its failure is an error.
func Repair(ov *overlay.Overlay, req *require.Requirement, prev *flow.Graph, failed []int, opts Options) (*RepairResult, error) {
	if len(failed) == 0 {
		return nil, fmt.Errorf("core: repair called with no failed instances")
	}
	failedSet := make(map[int]bool, len(failed))
	for _, nid := range failed {
		if _, ok := ov.Instance(nid); !ok {
			return nil, fmt.Errorf("core: failed instance %d is not in the overlay", nid)
		}
		failedSet[nid] = true
	}
	src, ok := prev.Assigned(req.Source())
	if !ok {
		return nil, fmt.Errorf("core: previous flow graph does not place the source service")
	}
	if failedSet[src] {
		return nil, fmt.Errorf("core: source instance %d failed; the consumer must re-issue the request", src)
	}

	// A service is affected when its instance failed or one of its
	// incident streams crossed a failed instance.
	affected := make(map[int]bool)
	for _, sid := range req.Services() {
		nid, ok := prev.Assigned(sid)
		if !ok || failedSet[nid] {
			affected[sid] = true
		}
	}
	for _, e := range prev.Edges() {
		for _, hop := range e.Path {
			if failedSet[hop] {
				affected[e.FromSID] = affected[e.FromSID] || failedSet[e.FromNID]
				affected[e.ToSID] = affected[e.ToSID] || failedSet[e.ToNID]
				// A relay failure only forces re-routing, which the
				// re-federation does anyway; the endpoints stay
				// pinned unless they themselves failed.
			}
		}
	}

	// Surviving overlay.
	surviving := ov.Clone()
	for nid := range failedSet {
		if err := surviving.RemoveInstance(nid); err != nil {
			return nil, err
		}
	}

	// Pin everything unaffected (the source is implicitly pinned by being
	// the entry point).
	pins := make(map[int]int)
	for _, sid := range req.Services() {
		if sid == req.Source() || affected[sid] {
			continue
		}
		if nid, ok := prev.Assigned(sid); ok {
			pins[sid] = nid
		}
	}
	opts.Pins = pins

	res, err := Federate(surviving, req, src, opts)
	if err != nil {
		opts.Metrics.Counter("core_repair_failures_total").Inc()
		return nil, fmt.Errorf("core: repair federation: %w", err)
	}

	out := &RepairResult{Result: res}
	for sid := range affected {
		out.Affected = append(out.Affected, sid)
	}
	sort.Ints(out.Affected)
	for _, sid := range req.Services() {
		before, hadBefore := prev.Assigned(sid)
		after, _ := res.Flow.Assigned(sid)
		if hadBefore && before != after {
			out.Moved = append(out.Moved, sid)
		}
	}
	sort.Ints(out.Moved)
	if reg := opts.Metrics; reg != nil {
		reg.Counter("core_repairs_total").Inc()
		reg.Counter("core_repair_affected_services_total").Add(int64(len(out.Affected)))
		reg.Counter("core_repair_moved_services_total").Add(int64(len(out.Moved)))
	}
	return out, nil
}
