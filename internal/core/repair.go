package core

import (
	"errors"
	"fmt"
	"sort"

	"sflow/internal/flow"
	"sflow/internal/overlay"
	"sflow/internal/require"
)

// RepairResult is the outcome of repairing a federation after failures.
type RepairResult struct {
	// Result is the re-federated flow graph over the surviving overlay.
	*Result
	// Affected lists the services whose placement had to be reconsidered,
	// ascending.
	Affected []int
	// Moved lists the services whose instance actually changed, ascending.
	Moved []int
}

// Repair re-federates a previously computed flow graph after a set of
// instances failed. Placements untouched by the failures are pinned so the
// repair is minimally disruptive: only services placed on failed instances —
// or whose streams were routed through them — are reconsidered. The source
// instance cannot be repaired away; its failure is an error.
func Repair(ov *overlay.Overlay, req *require.Requirement, prev *flow.Graph, failed []int, opts Options) (*RepairResult, error) {
	if len(failed) == 0 {
		return nil, fmt.Errorf("core: repair called with no failed instances")
	}
	failedSet := make(map[int]bool, len(failed))
	for _, nid := range failed {
		if _, ok := ov.Instance(nid); !ok {
			return nil, fmt.Errorf("core: failed instance %d is not in the overlay", nid)
		}
		failedSet[nid] = true
	}
	src, ok := prev.Assigned(req.Source())
	if !ok {
		return nil, fmt.Errorf("core: previous flow graph does not place the source service")
	}
	if failedSet[src] {
		return nil, fmt.Errorf("core: source instance %d failed; the consumer must re-issue the request", src)
	}

	// A service is affected when its instance failed or one of its
	// incident streams crossed a failed instance.
	affected := make(map[int]bool)
	for _, sid := range req.Services() {
		nid, ok := prev.Assigned(sid)
		if !ok || failedSet[nid] {
			affected[sid] = true
		}
	}
	for _, e := range prev.Edges() {
		for _, hop := range e.Path {
			if failedSet[hop] {
				affected[e.FromSID] = affected[e.FromSID] || failedSet[e.FromNID]
				affected[e.ToSID] = affected[e.ToSID] || failedSet[e.ToNID]
				// A relay failure only forces re-routing, which the
				// re-federation does anyway; the endpoints stay
				// pinned unless they themselves failed.
			}
		}
	}

	// Surviving overlay.
	surviving := ov.Clone()
	for nid := range failedSet {
		if err := surviving.RemoveInstance(nid); err != nil {
			return nil, err
		}
	}

	// Pin everything unaffected (the source is implicitly pinned by being
	// the entry point).
	pins := make(map[int]int)
	for _, sid := range req.Services() {
		if sid == req.Source() || affected[sid] {
			continue
		}
		if nid, ok := prev.Assigned(sid); ok {
			pins[sid] = nid
		}
	}
	opts.Pins = pins

	res, err := Federate(surviving, req, src, opts)
	if err != nil {
		opts.Metrics.Counter("core_repair_failures_total").Inc()
		return nil, fmt.Errorf("core: repair federation: %w", err)
	}

	out := &RepairResult{Result: res}
	for sid := range affected {
		out.Affected = append(out.Affected, sid)
	}
	sort.Ints(out.Affected)
	for _, sid := range req.Services() {
		before, hadBefore := prev.Assigned(sid)
		after, _ := res.Flow.Assigned(sid)
		if hadBefore && before != after {
			out.Moved = append(out.Moved, sid)
		}
	}
	sort.Ints(out.Moved)
	if reg := opts.Metrics; reg != nil {
		reg.Counter("core_repairs_total").Inc()
		reg.Counter("core_repair_affected_services_total").Add(int64(len(out.Affected)))
		reg.Counter("core_repair_moved_services_total").Add(int64(len(out.Moved)))
	}
	return out, nil
}

// maxRepairRounds bounds the re-repair loop of RepairPartial: each round may
// only discover more unresponsive instances, and an overlay that keeps losing
// instances eventually cannot host the requirement anyway.
const maxRepairRounds = 3

// RepairPartial re-federates after a federation under faults gave up with a
// *PartialFederationError: the unresponsive instances are removed from the
// overlay and the requirement is federated again from src over the survivors,
// keeping every placement of the partial flow graph that landed on a
// surviving instance pinned. If the caller leaves Options.Faults set, the
// repair run is itself fault-injected and may come back partial again; up to
// maxRepairRounds such rounds are retried, widening the removed set each
// time, before the last partial error is returned. With a clean (fault-free)
// Options the result equals an offline re-federation over the reduced
// overlay.
func RepairPartial(ov *overlay.Overlay, req *require.Requirement, src int, perr *PartialFederationError, opts Options) (*RepairResult, error) {
	surviving := ov.Clone()
	return RepairPartialOn(surviving, surviving.RemoveInstance, req, src, perr, opts)
}

// RepairPartialOn is RepairPartial over a caller-maintained overlay: surviving
// is mutated in place (not cloned), and every instance removal — the initial
// unresponsive set and any discovered during re-repair rounds — goes through
// the remove callback, so a caller holding derived caches (an incremental
// federation session) can keep them in sync instead of rebuilding. Passing
// surviving.RemoveInstance as remove recovers the stateless behaviour.
func RepairPartialOn(surviving *overlay.Overlay, remove func(nid int) error, req *require.Requirement, src int, perr *PartialFederationError, opts Options) (*RepairResult, error) {
	if perr == nil {
		return nil, fmt.Errorf("core: repair-partial called without a partial federation error")
	}
	dead := make(map[int]bool)
	for _, nid := range perr.Unresponsive {
		// The consumer's virtual node can show up unresponsive when sink
		// reports were lost; it is not an overlay instance and cannot be
		// removed.
		if _, ok := surviving.Instance(nid); ok {
			dead[nid] = true
		}
	}
	if dead[src] {
		return nil, fmt.Errorf("core: source instance %d unresponsive; the consumer must re-issue the request", src)
	}
	prev := perr.Flow
	if prev == nil {
		prev = flow.New()
	}

	for _, nid := range sortedKeys(dead) {
		if err := remove(nid); err != nil {
			return nil, err
		}
	}
	reg := opts.Metrics
	reg.Counter("core_repair_partial_total").Inc()

	for round := 0; ; round++ {
		// Pin every partial-flow placement that survived; everything else
		// is up for (re)placement.
		pins := make(map[int]int)
		for _, sid := range req.Services() {
			if sid == req.Source() {
				continue
			}
			if nid, ok := prev.Assigned(sid); ok && !dead[nid] {
				pins[sid] = nid
			}
		}
		opts.Pins = pins

		res, err := Federate(surviving, req, src, opts)
		if err == nil {
			out := &RepairResult{Result: res}
			for _, sid := range req.Services() {
				if sid == req.Source() {
					continue
				}
				before, placed := prev.Assigned(sid)
				if !placed || dead[before] {
					out.Affected = append(out.Affected, sid)
				} else if after, _ := res.Flow.Assigned(sid); before != after {
					out.Moved = append(out.Moved, sid)
				}
			}
			sort.Ints(out.Affected)
			sort.Ints(out.Moved)
			if reg != nil {
				reg.Counter("core_repairs_total").Inc()
				reg.Counter("core_repair_affected_services_total").Add(int64(len(out.Affected)))
				reg.Counter("core_repair_moved_services_total").Add(int64(len(out.Moved)))
			}
			return out, nil
		}
		var again *PartialFederationError
		if !errors.As(err, &again) || round+1 >= maxRepairRounds {
			reg.Counter("core_repair_failures_total").Inc()
			return nil, fmt.Errorf("core: repair federation: %w", err)
		}
		// The repair run itself hit unresponsive instances: widen the
		// removed set and go again.
		reg.Counter("core_re_repairs_total").Inc()
		grew := false
		for _, nid := range again.Unresponsive {
			if _, ok := surviving.Instance(nid); !ok || dead[nid] {
				continue
			}
			if nid == src {
				return nil, fmt.Errorf("core: source instance %d unresponsive; the consumer must re-issue the request", src)
			}
			dead[nid] = true
			grew = true
			if err := remove(nid); err != nil {
				return nil, err
			}
		}
		if !grew {
			// Same fault pattern, no new information: retrying cannot
			// converge.
			reg.Counter("core_repair_failures_total").Inc()
			return nil, fmt.Errorf("core: repair federation: %w", err)
		}
	}
}

func sortedKeys(m map[int]bool) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}
