package core

import (
	"errors"
	"fmt"
	"sort"

	"sflow/internal/flow"
	"sflow/internal/trace"
)

// The protocol as published assumes lossless, in-order, crash-free message
// delivery. This file adds the reliability sublayer that lets it survive a
// faulty transport (transport.Faulty, or any lossy medium): every data
// message carries a per-sender sequence number, receivers acknowledge and
// deduplicate, senders retransmit with exponential backoff up to a bounded
// budget, and a per-federation deadline turns a run that cannot complete
// into a typed *PartialFederationError instead of an indefinite stall. The
// sublayer is off by default — a clean run is byte-for-byte the historical
// protocol — and switches on with Options.Reliable or Options.Faults.

// ErrPartialFederation is the sentinel wrapped by every error that carries a
// partial federation: the algorithm placed only part of the requirement.
// Match with errors.Is and recover the partial flow graph with errors.As on
// *PartialFederationError.
var ErrPartialFederation = errors.New("sflow: partial federation")

// PartialFederationError reports that a federation could not satisfy the
// full requirement and carries what it did federate. It unwraps to
// ErrPartialFederation (and to its Cause, when set).
type PartialFederationError struct {
	// Flow is the partial service flow graph: for the servicepath control
	// algorithm the main source-to-sink chain, for a faulty distributed
	// run the merge of the sink reports that did arrive.
	Flow *flow.Graph
	// Unresponsive lists the instances (ascending) whose messages
	// exhausted the retransmission budget — crashed or unreachable nodes;
	// feed it to RepairPartial to re-federate around them.
	Unresponsive []int
	// Stats describes the protocol run that gave up (zero for
	// centralised algorithms).
	Stats Stats
	// Cause, when non-nil, is the underlying condition (for example the
	// ErrStuck sink-count error of a timed-out distributed run).
	Cause error
}

func (e *PartialFederationError) Error() string {
	if len(e.Unresponsive) > 0 {
		return fmt.Sprintf("sflow: partial federation: requirement not fully placed (unresponsive instances %v)", e.Unresponsive)
	}
	return "sflow: partial federation: requirement not fully placed"
}

// Unwrap makes errors.Is(err, ErrPartialFederation) — and, when a cause is
// attached, errors.Is against the cause chain — work.
func (e *PartialFederationError) Unwrap() []error {
	if e.Cause != nil {
		return []error{ErrPartialFederation, e.Cause}
	}
	return []error{ErrPartialFederation}
}

// reliable wraps one protocol data message with its per-sender sequence
// number.
type reliable struct {
	seq     uint64
	payload any
}

// ack acknowledges receipt of the data message with the given sequence
// number; it is itself unacknowledged (and may be lost, which a
// retransmission recovers).
type ack struct {
	seq uint64
}

// pkey identifies one reliable message: sender, destination, sequence.
type pkey struct {
	src, dst int
	seq      uint64
}

// pendingMsg is the sender-side retransmission state of one unacked message.
type pendingMsg struct {
	msg      any
	attempts int
	cancel   func() bool
}

// relState is the engine's reliability sublayer state; the zero value is the
// disabled sublayer.
type relState struct {
	enabled   bool
	budget    int   // retransmissions per message before giving up
	backoffUS int64 // first retransmission delay; doubles per attempt

	// The fields below are guarded by engine.mu.
	nextSeq        map[int]uint64
	seen           map[pkey]bool
	pending        map[pkey]*pendingMsg
	unacked        int
	done           bool // shut down: no further retries or timers
	cancelDeadline func() bool
	unresponsive   map[int]bool
}

// sendProto sends one protocol data message, through the reliability
// sublayer when it is enabled.
func (e *engine) sendProto(from, to int, msg any) {
	if !e.rel.enabled {
		e.tr.Send(from, to, msg)
		return
	}
	e.mu.Lock()
	if e.rel.done {
		e.mu.Unlock()
		return
	}
	seq := e.rel.nextSeq[from] + 1
	e.rel.nextSeq[from] = seq
	k := pkey{src: from, dst: to, seq: seq}
	p := &pendingMsg{msg: msg}
	e.rel.pending[k] = p
	e.rel.unacked++
	e.mu.Unlock()
	e.tr.Send(from, to, reliable{seq: seq, payload: msg})
	e.scheduleRetry(k, p)
}

// scheduleRetry arms the retransmission timer for a pending message. The
// timer is cancelled if the message was acked (or the sublayer shut down)
// before the timer could be recorded.
func (e *engine) scheduleRetry(k pkey, p *pendingMsg) {
	delay := e.rel.backoffUS << uint(p.attempts)
	cancel := e.tr.After(delay, func() { e.retry(k) })
	e.mu.Lock()
	if cur, still := e.rel.pending[k]; !still || cur != p || e.rel.done {
		e.mu.Unlock()
		cancel()
		return
	}
	p.cancel = cancel
	e.mu.Unlock()
}

// retry retransmits one still-unacked message, or — once the budget is
// spent — declares its destination unresponsive.
func (e *engine) retry(k pkey) {
	e.mu.Lock()
	p, ok := e.rel.pending[k]
	if !ok || e.rel.done {
		e.mu.Unlock()
		return
	}
	p.attempts++
	if p.attempts > e.rel.budget {
		delete(e.rel.pending, k)
		e.rel.unacked--
		e.rel.unresponsive[k.dst] = true
		drained := e.rel.unacked == 0
		e.mu.Unlock()
		e.ins.unresponsive.Inc()
		e.trace(trace.KindGiveUp, k.src, k.dst, -1, "retry budget exhausted")
		if drained {
			// Nothing is in flight and nothing ever will be: give up
			// now instead of waiting out the deadline.
			e.shutdownReliable()
		}
		return
	}
	e.stats.Retries++
	e.mu.Unlock()
	e.ins.retries.Inc()
	e.tr.Send(k.src, k.dst, reliable{seq: k.seq, payload: p.msg})
	e.scheduleRetry(k, p)
}

// onReliable delivers one sequenced data message: acknowledge always,
// dispatch the payload only the first time. The ack is sent after the
// dispatch so that by the time the sender sees its last message acked, every
// follow-up message the dispatch produced is already registered as pending —
// which makes "no unacked messages and the federation incomplete" a safe
// give-up condition.
func (e *engine) onReliable(from, to int, m reliable) {
	k := pkey{src: from, dst: to, seq: m.seq}
	e.mu.Lock()
	if e.rel.seen[k] {
		e.stats.Dedups++
		e.mu.Unlock()
		e.ins.dedups.Inc()
		e.tr.Send(to, from, ack{seq: m.seq})
		return
	}
	e.rel.seen[k] = true
	e.mu.Unlock()
	e.handle(from, to, m.payload)
	e.tr.Send(to, from, ack{seq: m.seq})
}

// onAck settles one pending message and gives up early when nothing remains
// in flight for an incomplete federation.
func (e *engine) onAck(from, to int, m ack) {
	k := pkey{src: to, dst: from, seq: m.seq}
	e.mu.Lock()
	p, ok := e.rel.pending[k]
	if !ok {
		e.mu.Unlock()
		return
	}
	delete(e.rel.pending, k)
	e.rel.unacked--
	drained := e.rel.unacked == 0 && !e.rel.done
	complete := len(e.sinks) == len(e.req.Sinks())
	cancel := p.cancel
	e.mu.Unlock()
	if cancel != nil {
		cancel()
	}
	if drained && !complete {
		e.shutdownReliable()
	}
}

// shutdownReliable stops the reliability sublayer: every retransmission
// timer and the federation deadline are cancelled so the transport can reach
// quiescence. Called when the federation completes, fails, gives up, or hits
// its deadline; the run's outcome is decided afterwards from the sink
// reports that made it.
func (e *engine) shutdownReliable() {
	if !e.rel.enabled {
		return
	}
	e.mu.Lock()
	if e.rel.done {
		e.mu.Unlock()
		return
	}
	e.rel.done = true
	cancels := make([]func() bool, 0, len(e.rel.pending)+1)
	for _, p := range e.rel.pending {
		if p.cancel != nil {
			cancels = append(cancels, p.cancel)
		}
	}
	e.rel.pending = make(map[pkey]*pendingMsg)
	e.rel.unacked = 0
	if e.rel.cancelDeadline != nil {
		cancels = append(cancels, e.rel.cancelDeadline)
		e.rel.cancelDeadline = nil
	}
	e.mu.Unlock()
	for _, cancel := range cancels {
		cancel()
	}
}

// partialError assembles the typed error of a federation that ended without
// all sinks reporting, merging whatever partial flow graphs did arrive.
func (e *engine) partialError(delivered int) *PartialFederationError {
	partial := flow.New()
	for _, g := range e.sinks {
		// Partial graphs from disjoint branches merge cleanly; a
		// conflicting merge cannot happen because claims serialise the
		// shared services — but stay defensive and keep what merged.
		_ = partial.Merge(g)
	}
	unresponsive := make([]int, 0, len(e.rel.unresponsive))
	for nid := range e.rel.unresponsive {
		unresponsive = append(unresponsive, nid)
	}
	sort.Ints(unresponsive)
	e.stats.Messages = delivered
	e.stats.NodesInvolved = len(e.nodes)
	e.ins.partials.Inc()
	return &PartialFederationError{
		Flow:         partial,
		Unresponsive: unresponsive,
		Stats:        e.stats,
		Cause: fmt.Errorf("%w: %d of %d sinks reported before the federation gave up",
			ErrStuck, len(e.sinks), len(e.req.Sinks())),
	}
}
