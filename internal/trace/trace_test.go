package trace

import (
	"strings"
	"sync"
	"testing"
)

func TestRecorderBasics(t *testing.T) {
	r := New()
	if r.Len() != 0 {
		t.Fatal("fresh recorder not empty")
	}
	r.Add(Event{Time: 5, Kind: KindSend, Node: 1, Peer: 2, Service: -1})
	r.Add(Event{Time: 9, Kind: KindCompute, Node: 2, Peer: -1, Service: 3, Detail: "x"})
	if r.Len() != 2 {
		t.Fatalf("Len = %d", r.Len())
	}
	if r.Count(KindSend) != 1 || r.Count(KindReport) != 0 {
		t.Fatal("Count wrong")
	}
	evs := r.Events()
	if evs[0].Kind != KindSend || evs[1].Detail != "x" {
		t.Fatalf("events = %+v", evs)
	}
	// Events returns a copy.
	evs[0].Node = 99
	if r.Events()[0].Node != 1 {
		t.Fatal("Events leaked internal slice")
	}
}

func TestEventString(t *testing.T) {
	e := Event{Time: 42, Kind: KindClaim, Node: 7, Peer: -1, Service: 3, Detail: "pinned"}
	s := e.String()
	for _, want := range []string{"42us", "claim", "node 7", "service 3", "(pinned)"} {
		if !strings.Contains(s, want) {
			t.Fatalf("missing %q in %q", want, s)
		}
	}
	send := Event{Time: 1, Kind: KindSend, Node: 1, Peer: 2, Service: -1}
	if !strings.Contains(send.String(), "<-> 2") {
		t.Fatalf("send string = %q", send.String())
	}
}

func TestKindStrings(t *testing.T) {
	kinds := []Kind{KindSend, KindDeliver, KindCompute, KindClaim, KindRecompute, KindReport}
	seen := make(map[string]bool)
	for _, k := range kinds {
		s := k.String()
		if s == "" || seen[s] {
			t.Fatalf("kind %d has bad or duplicate name %q", k, s)
		}
		seen[s] = true
	}
	if Kind(99).String() == "" {
		t.Fatal("unknown kind empty")
	}
}

func TestRecorderString(t *testing.T) {
	r := New()
	r.Add(Event{Time: 1, Kind: KindSend, Node: 0, Peer: 1, Service: -1})
	r.Add(Event{Time: 2, Kind: KindReport, Node: 1, Peer: -1, Service: 5})
	out := r.String()
	if lines := strings.Count(out, "\n"); lines != 2 {
		t.Fatalf("String has %d lines:\n%s", lines, out)
	}
}

func TestRecorderConcurrent(t *testing.T) {
	r := New()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				r.Add(Event{Time: int64(i), Kind: KindDeliver, Node: g, Peer: -1, Service: -1})
			}
		}(g)
	}
	wg.Wait()
	if r.Len() != 800 {
		t.Fatalf("Len = %d, want 800", r.Len())
	}
}

func TestMermaid(t *testing.T) {
	r := New()
	r.Add(Event{Time: 0, Kind: KindSend, Node: -1, Peer: 10, Service: -1, Detail: "sfederate"})
	r.Add(Event{Time: 0, Kind: KindDeliver, Node: 10, Peer: -1, Service: -1, Detail: "sfederate"})
	r.Add(Event{Time: 0, Kind: KindCompute, Node: 10, Peer: -1, Service: 1, Detail: "2 downstream streams"})
	r.Add(Event{Time: 0, Kind: KindClaim, Node: 41, Peer: -1, Service: 4})
	r.Add(Event{Time: 0, Kind: KindSend, Node: 10, Peer: 20, Service: 2, Detail: "sfederate"})
	r.Add(Event{Time: 9, Kind: KindRecompute, Node: 20, Peer: -1, Service: 2, Detail: "1 lost claims"})
	r.Add(Event{Time: 30, Kind: KindReport, Node: 40, Peer: -1, Service: 4})
	out := r.Mermaid()
	for _, want := range []string{
		"sequenceDiagram",
		"participant consumer",
		"participant n10",
		"consumer->>n10: sfederate @0us",
		"n10->>n20: sfederate (service 2) @0us",
		"Note over n10: compute service 1",
		"Note over n41: claim service 4",
		"Note over n20: recompute",
		"n40->>consumer: report service 4 @30us",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}
