// Package trace records the event timeline of a distributed federation run:
// message sends and deliveries, local computations, claims, re-computations
// and sink reports, each stamped with the transport's virtual time. Traces
// are the observability surface of the protocol — tests assert on them and
// the sflow command can print them.
package trace

import (
	"fmt"
	"strings"
	"sync"
)

// Kind classifies a trace event.
type Kind int

const (
	// KindSend is a protocol message leaving a node.
	KindSend Kind = iota + 1
	// KindDeliver is a protocol message arriving at a node.
	KindDeliver
	// KindCompute is one local computation at a node.
	KindCompute
	// KindClaim is a merge-service claim registered in the rendezvous.
	KindClaim
	// KindRecompute is a local computation repeated after losing a claim.
	KindRecompute
	// KindReport is a sink reporting the completed flow graph.
	KindReport
	// KindGiveUp is a sender exhausting its retransmission budget towards
	// an unresponsive peer.
	KindGiveUp
)

// String returns the kind's name.
func (k Kind) String() string {
	switch k {
	case KindSend:
		return "send"
	case KindDeliver:
		return "deliver"
	case KindCompute:
		return "compute"
	case KindClaim:
		return "claim"
	case KindRecompute:
		return "recompute"
	case KindReport:
		return "report"
	case KindGiveUp:
		return "giveup"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Event is one timeline entry.
type Event struct {
	// Time is the transport's virtual time in microseconds (zero on the
	// goroutine transport).
	Time int64
	// Kind classifies the event.
	Kind Kind
	// Node is the acting instance (NID); -1 is the consumer.
	Node int
	// Peer is the other endpoint for send/deliver events (-1 otherwise).
	Peer int
	// Service is the service involved (claims, reports; -1 otherwise).
	Service int
	// Detail is a short human-readable annotation.
	Detail string
}

// String renders one event as a log line.
func (e Event) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "[%8dus] %-9s node %d", e.Time, e.Kind, e.Node)
	if e.Peer >= 0 || e.Kind == KindSend || e.Kind == KindDeliver {
		fmt.Fprintf(&b, " <-> %d", e.Peer)
	}
	if e.Service >= 0 {
		fmt.Fprintf(&b, " service %d", e.Service)
	}
	if e.Detail != "" {
		fmt.Fprintf(&b, " (%s)", e.Detail)
	}
	return b.String()
}

// Recorder collects events. The zero value is unusable; use New. Recorders
// are safe for concurrent use (the goroutine transport appends from many
// goroutines).
type Recorder struct {
	mu     sync.Mutex
	events []Event
}

// New returns an empty recorder.
func New() *Recorder { return &Recorder{} }

// Add appends one event.
func (r *Recorder) Add(e Event) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.events = append(r.events, e)
}

// Events returns a copy of the timeline in recording order.
func (r *Recorder) Events() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Event, len(r.events))
	copy(out, r.events)
	return out
}

// Len returns the number of recorded events.
func (r *Recorder) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.events)
}

// Count returns the number of events of one kind.
func (r *Recorder) Count(k Kind) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := 0
	for _, e := range r.events {
		if e.Kind == k {
			n++
		}
	}
	return n
}

// String renders the full timeline, one event per line.
func (r *Recorder) String() string {
	var b strings.Builder
	for _, e := range r.Events() {
		b.WriteString(e.String())
		b.WriteByte('\n')
	}
	return b.String()
}
