package trace

import (
	"fmt"
	"strings"
)

// Mermaid renders the recorded timeline as a Mermaid sequence diagram:
// participants are the consumer and every involved instance; sends become
// arrows, computations and claims become notes. Paste the output into any
// Mermaid renderer to see the federation unfold.
func (r *Recorder) Mermaid() string {
	events := r.Events()
	var b strings.Builder
	b.WriteString("sequenceDiagram\n")

	seen := make(map[int]bool)
	var order []int
	for _, e := range events {
		for _, n := range []int{e.Node, e.Peer} {
			if (e.Kind == KindSend || e.Kind == KindDeliver || n == e.Node) && !seen[n] && validParticipant(n, e) {
				seen[n] = true
				order = append(order, n)
			}
		}
	}
	for _, n := range order {
		fmt.Fprintf(&b, "  participant %s\n", participant(n))
	}
	for _, e := range events {
		switch e.Kind {
		case KindSend:
			label := e.Detail
			if e.Service >= 0 {
				label = fmt.Sprintf("%s (service %d)", e.Detail, e.Service)
			}
			fmt.Fprintf(&b, "  %s->>%s: %s @%dus\n",
				participant(e.Node), participant(e.Peer), label, e.Time)
		case KindCompute:
			fmt.Fprintf(&b, "  Note over %s: compute service %d (%s)\n",
				participant(e.Node), e.Service, e.Detail)
		case KindRecompute:
			fmt.Fprintf(&b, "  Note over %s: recompute (%s)\n",
				participant(e.Node), e.Detail)
		case KindClaim:
			fmt.Fprintf(&b, "  Note over %s: claim service %d\n",
				participant(e.Node), e.Service)
		case KindReport:
			fmt.Fprintf(&b, "  %s->>%s: report service %d @%dus\n",
				participant(e.Node), participant(e.Peer), e.Service, e.Time)
		}
	}
	return b.String()
}

// participant names a node for the diagram; -1 is the consumer.
func participant(n int) string {
	if n < 0 {
		return "consumer"
	}
	return fmt.Sprintf("n%d", n)
}

// validParticipant filters peers that are placeholders (-1 used as "none").
func validParticipant(n int, e Event) bool {
	if n >= 0 {
		return true
	}
	// -1 is the consumer only on send/deliver/report edges.
	return e.Kind == KindSend || e.Kind == KindDeliver || e.Kind == KindReport
}
