package require

import (
	"encoding/json"
	"math/rand"
	"reflect"
	"testing"
)

// paperDAG is the generic requirement of Fig 5 (travel engine example):
// 1 -> {2,3}; 2 -> 4; 3 -> {4,5}; 4 -> 6; 5 -> 6.
func paperDAG(t *testing.T) *Requirement {
	t.Helper()
	r, err := FromEdges([][2]int{{1, 2}, {1, 3}, {2, 4}, {3, 4}, {3, 5}, {4, 6}, {5, 6}})
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestNewPath(t *testing.T) {
	r, err := NewPath(1, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if r.Source() != 1 {
		t.Fatalf("Source = %d", r.Source())
	}
	if want := []int{3}; !reflect.DeepEqual(r.Sinks(), want) {
		t.Fatalf("Sinks = %v", r.Sinks())
	}
	if r.Shape() != ShapePath {
		t.Fatalf("Shape = %v", r.Shape())
	}
	if want := []int{1, 2, 3}; !reflect.DeepEqual(r.PathServices(), want) {
		t.Fatalf("PathServices = %v", r.PathServices())
	}
	if _, err := NewPath(1); err == nil {
		t.Fatal("single-service path accepted")
	}
}

func TestValidateRejections(t *testing.T) {
	tests := []struct {
		name  string
		edges [][2]int
	}{
		{"cycle", [][2]int{{1, 2}, {2, 3}, {3, 1}}},
		{"two sources", [][2]int{{1, 3}, {2, 3}}},
		{"disconnected", [][2]int{{1, 2}, {3, 4}}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := FromEdges(tt.edges); err == nil {
				t.Fatalf("%s accepted", tt.name)
			}
		})
	}
	if err := New().Validate(); err == nil {
		t.Fatal("empty requirement accepted")
	}
}

func TestAccessors(t *testing.T) {
	r := paperDAG(t)
	if r.Source() != 1 {
		t.Fatalf("Source = %d", r.Source())
	}
	if want := []int{6}; !reflect.DeepEqual(r.Sinks(), want) {
		t.Fatalf("Sinks = %v", r.Sinks())
	}
	if r.NumServices() != 6 || r.NumDependencies() != 7 {
		t.Fatalf("sizes: %d services, %d deps", r.NumServices(), r.NumDependencies())
	}
	if want := []int{4, 5}; !reflect.DeepEqual(r.Downstream(3), want) {
		t.Fatalf("Downstream(3) = %v", r.Downstream(3))
	}
	if want := []int{2, 3}; !reflect.DeepEqual(r.Upstream(4), want) {
		t.Fatalf("Upstream(4) = %v", r.Upstream(4))
	}
	if r.InDegree(4) != 2 || r.OutDegree(3) != 2 {
		t.Fatal("degrees wrong")
	}
	if !r.Has(5) || r.Has(99) {
		t.Fatal("Has wrong")
	}
	if !r.HasDependency(3, 5) || r.HasDependency(5, 3) {
		t.Fatal("HasDependency wrong")
	}
	order := r.TopoOrder()
	pos := map[int]int{}
	for i, s := range order {
		pos[s] = i
	}
	for _, e := range r.Edges() {
		if pos[e[0]] >= pos[e[1]] {
			t.Fatalf("topo order violates edge %v", e)
		}
	}
}

func TestShapeClassification(t *testing.T) {
	path, _ := NewPath(1, 2, 3, 4)
	if path.Shape() != ShapePath {
		t.Fatalf("path shape = %v", path.Shape())
	}
	tree, err := FromEdges([][2]int{{1, 2}, {1, 3}, {2, 4}, {2, 5}})
	if err != nil {
		t.Fatal(err)
	}
	if tree.Shape() != ShapeTree {
		t.Fatalf("tree shape = %v", tree.Shape())
	}
	disjoint, err := FromEdges([][2]int{{1, 2}, {2, 5}, {1, 3}, {3, 5}, {1, 4}, {4, 5}})
	if err != nil {
		t.Fatal(err)
	}
	if disjoint.Shape() != ShapeDisjointPaths {
		t.Fatalf("disjoint shape = %v", disjoint.Shape())
	}
	if g := paperDAG(t); g.Shape() != ShapeGeneral {
		t.Fatalf("general shape = %v", g.Shape())
	}
	for _, s := range []Shape{ShapePath, ShapeTree, ShapeDisjointPaths, ShapeGeneral, Shape(42)} {
		if s.String() == "" {
			t.Fatal("empty shape string")
		}
	}
}

func TestPathServicesOnNonPath(t *testing.T) {
	if got := paperDAG(t).PathServices(); got != nil {
		t.Fatalf("PathServices on DAG = %v, want nil", got)
	}
}

func TestJunctions(t *testing.T) {
	r := paperDAG(t)
	// Source 1 (also splits), split 3, merge 4, merge/sink 6.
	if want := []int{1, 3, 4, 6}; !reflect.DeepEqual(r.Junctions(), want) {
		t.Fatalf("Junctions = %v, want %v", r.Junctions(), want)
	}
	p, _ := NewPath(1, 2, 3)
	if want := []int{1, 3}; !reflect.DeepEqual(p.Junctions(), want) {
		t.Fatalf("path Junctions = %v, want %v", p.Junctions(), want)
	}
}

func TestSubFrom(t *testing.T) {
	r := paperDAG(t)
	sub := r.SubFrom(3)
	if want := []int{3, 4, 5, 6}; !reflect.DeepEqual(sub.Services(), want) {
		t.Fatalf("SubFrom(3) services = %v", sub.Services())
	}
	// The 2->4 edge is dropped: its tail is outside the subgraph.
	if sub.HasDependency(2, 4) {
		t.Fatal("edge from outside survived")
	}
	if sub.Source() != 3 {
		t.Fatalf("sub source = %d", sub.Source())
	}
	if err := sub.Validate(); err != nil {
		t.Fatalf("sub-requirement invalid: %v", err)
	}
	// Original untouched.
	if r.NumServices() != 6 {
		t.Fatal("SubFrom mutated original")
	}
}

func TestCloneEqual(t *testing.T) {
	r := paperDAG(t)
	c := r.Clone()
	if !r.Equal(c) {
		t.Fatal("clone differs")
	}
	c.AddDependency(6, 7)
	if r.Equal(c) || r.Has(7) {
		t.Fatal("clone aliases original")
	}
}

func TestGeneratePath(t *testing.T) {
	r, err := GeneratePath(5)
	if err != nil {
		t.Fatal(err)
	}
	if r.Shape() != ShapePath || r.NumServices() != 5 {
		t.Fatalf("bad generated path: shape=%v n=%d", r.Shape(), r.NumServices())
	}
	if _, err := GeneratePath(1); err == nil {
		t.Fatal("GeneratePath(1) accepted")
	}
}

func TestGenerateDisjoint(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	r, err := GenerateDisjoint(rng, 3, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	if r.Shape() != ShapeDisjointPaths {
		t.Fatalf("shape = %v", r.Shape())
	}
	if r.OutDegree(r.Source()) != 3 {
		t.Fatalf("source fan-out = %d", r.OutDegree(r.Source()))
	}
	if _, err := GenerateDisjoint(rng, 1, 1, 1); err == nil {
		t.Fatal("1 branch accepted")
	}
	if _, err := GenerateDisjoint(rng, 2, 3, 1); err == nil {
		t.Fatal("inverted length range accepted")
	}
}

func TestGenerateSplitMerge(t *testing.T) {
	r, err := GenerateSplitMerge(2, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Validate(); err != nil {
		t.Fatal(err)
	}
	// One service must merge `branches` streams.
	found := false
	for _, s := range r.Services() {
		if r.InDegree(s) == 3 {
			found = true
		}
	}
	if !found {
		t.Fatal("no merge service with in-degree 3")
	}
	if _, err := GenerateSplitMerge(0, 2, 1); err == nil {
		t.Fatal("zero lead accepted")
	}
	if _, err := GenerateSplitMerge(1, 1, 1); err == nil {
		t.Fatal("single branch accepted")
	}
}

func TestGenerateDAGPropertyValid(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 80; trial++ {
		n := 3 + rng.Intn(10)
		r, err := GenerateDAG(rng, DAGConfig{Services: n, EdgeProb: rng.Float64() * 0.5})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if err := r.Validate(); err != nil {
			t.Fatalf("trial %d: generated invalid requirement: %v", trial, err)
		}
		if r.NumServices() != n {
			t.Fatalf("trial %d: %d services, want %d", trial, r.NumServices(), n)
		}
		if r.Source() != 1 {
			t.Fatalf("trial %d: source = %d", trial, r.Source())
		}
		if want := []int{n}; !reflect.DeepEqual(r.Sinks(), want) {
			t.Fatalf("trial %d: sinks = %v, want %v", trial, r.Sinks(), want)
		}
	}
}

func TestGenerateDAGMaxFan(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	r, err := GenerateDAG(rng, DAGConfig{Services: 12, EdgeProb: 1, MaxFan: 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range r.Services() {
		// The sink-funnel step may push the sink's in-degree past
		// MaxFan; every other bound must hold.
		if r.OutDegree(s) > 3 {
			t.Fatalf("service %d out-degree %d > MaxFan", s, r.OutDegree(s))
		}
		if s != 12 && r.InDegree(s) > 3 {
			t.Fatalf("service %d in-degree %d > MaxFan", s, r.InDegree(s))
		}
	}
}

func TestGenerateDAGRejects(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := GenerateDAG(rng, DAGConfig{Services: 2}); err == nil {
		t.Fatal("2 services accepted")
	}
	if _, err := GenerateDAG(rng, DAGConfig{Services: 5, EdgeProb: 1.5}); err == nil {
		t.Fatal("EdgeProb > 1 accepted")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	r := paperDAG(t)
	data, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	var back Requirement
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if !r.Equal(&back) {
		t.Fatalf("round trip differs:\n%v\n%v", r, &back)
	}
}

func TestJSONRejectsInvalid(t *testing.T) {
	var r Requirement
	if err := json.Unmarshal([]byte(`{"services":[1,2,3],"edges":[[1,2],[2,3],[3,1]]}`), &r); err == nil {
		t.Fatal("cyclic requirement accepted")
	}
	if err := json.Unmarshal([]byte(`{bad`), &r); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestGenerateTree(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for trial := 0; trial < 40; trial++ {
		n := 2 + rng.Intn(12)
		r, err := GenerateTree(rng, n, 3)
		if err != nil {
			t.Fatal(err)
		}
		if err := r.Validate(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if got := r.Shape(); got != ShapePath && got != ShapeTree {
			t.Fatalf("trial %d: shape = %v", trial, got)
		}
		// Tree invariants: n-1 edges, every non-root in-degree 1.
		if r.NumDependencies() != n-1 {
			t.Fatalf("trial %d: %d edges for %d services", trial, r.NumDependencies(), n)
		}
		for _, s := range r.Services() {
			if s != r.Source() && r.InDegree(s) != 1 {
				t.Fatalf("trial %d: service %d has in-degree %d", trial, s, r.InDegree(s))
			}
			if r.OutDegree(s) > 3 {
				t.Fatalf("trial %d: fanout bound violated at %d", trial, s)
			}
		}
	}
	if _, err := GenerateTree(rng, 1, 0); err == nil {
		t.Fatal("1-service tree accepted")
	}
}

func TestSubFromSink(t *testing.T) {
	r := paperDAG(t)
	sub := r.SubFrom(6)
	if sub.NumServices() != 1 || sub.NumDependencies() != 0 {
		t.Fatalf("SubFrom(sink) = %v", sub)
	}
	// A single service is a valid degenerate requirement (source==sink).
	if err := sub.Validate(); err != nil {
		t.Fatalf("single-service sub-requirement invalid: %v", err)
	}
}

func TestJunctionsOfTree(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	r, err := GenerateTree(rng, 9, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, j := range r.Junctions() {
		if j != r.Source() && r.OutDegree(j) != 0 && r.OutDegree(j) <= 1 && r.InDegree(j) <= 1 {
			t.Fatalf("non-junction %d listed", j)
		}
	}
}
