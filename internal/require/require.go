// Package require models service requirements: the directed acyclic graphs
// of required services that a consumer submits for federation (Sec 2 of the
// paper). A valid requirement has exactly one source service, at least one
// sink service, and every service lies on some source-to-sink path.
//
// Nodes of a requirement are service identifiers (SIDs), plain ints. A
// requirement talks only about *services*; which overlay *instance* performs
// each service is what federation algorithms decide.
package require

import (
	"fmt"
	"sort"

	"sflow/internal/graph"
)

// Requirement is a service requirement DAG. Build one with the Add methods
// or a constructor, then call Validate (constructors validate for you).
type Requirement struct {
	dag *graph.Digraph
}

// New returns an empty requirement.
func New() *Requirement {
	return &Requirement{dag: graph.New()}
}

// FromEdges builds and validates a requirement from a list of service
// dependency edges (from -> to).
func FromEdges(edges [][2]int) (*Requirement, error) {
	r := New()
	for _, e := range edges {
		r.AddDependency(e[0], e[1])
	}
	if err := r.Validate(); err != nil {
		return nil, err
	}
	return r, nil
}

// NewPath builds and validates a single-chain requirement
// sids[0] -> sids[1] -> ... (the paper's most primitive form, Fig 1).
func NewPath(sids ...int) (*Requirement, error) {
	if len(sids) < 2 {
		return nil, fmt.Errorf("require: a path needs at least 2 services, got %d", len(sids))
	}
	r := New()
	for i := 0; i+1 < len(sids); i++ {
		r.AddDependency(sids[i], sids[i+1])
	}
	if err := r.Validate(); err != nil {
		return nil, err
	}
	return r, nil
}

// AddService inserts a service with no dependencies yet.
func (r *Requirement) AddService(sid int) { r.dag.AddNode(sid) }

// AddDependency records that service `to` consumes the output of service
// `from`.
func (r *Requirement) AddDependency(from, to int) { r.dag.AddEdge(from, to) }

// Validate checks the structural rules of Sec 2.2: the graph must be a DAG
// with exactly one source, at least one sink, and every service on some
// source-to-sink path.
func (r *Requirement) Validate() error {
	if r.dag.NumNodes() == 0 {
		return fmt.Errorf("require: empty requirement")
	}
	if !r.dag.IsDAG() {
		return fmt.Errorf("require: requirement contains a cycle")
	}
	sources := r.dag.Sources()
	if len(sources) != 1 {
		return fmt.Errorf("require: need exactly one source service, found %d (%v)", len(sources), sources)
	}
	if len(r.dag.Sinks()) == 0 {
		return fmt.Errorf("require: no sink service")
	}
	// Every service reachable from the source...
	reach := r.dag.Reachable(sources[0])
	if len(reach) != r.dag.NumNodes() {
		return fmt.Errorf("require: %d services unreachable from source %d",
			r.dag.NumNodes()-len(reach), sources[0])
	}
	// ...and every service reaches some sink (true for any DAG where all
	// nodes are reachable: follow successors until out-degree 0), so no
	// extra check is needed.
	return nil
}

// Source returns the unique source service. Call only on validated
// requirements.
func (r *Requirement) Source() int {
	s := r.dag.Sources()
	if len(s) != 1 {
		return -1
	}
	return s[0]
}

// Sinks returns the sink services, ascending.
func (r *Requirement) Sinks() []int { return r.dag.Sinks() }

// Services returns all required services, ascending.
func (r *Requirement) Services() []int { return r.dag.Nodes() }

// NumServices returns the number of required services.
func (r *Requirement) NumServices() int { return r.dag.NumNodes() }

// NumDependencies returns the number of dependency edges.
func (r *Requirement) NumDependencies() int { return r.dag.NumEdges() }

// Has reports whether sid is a required service.
func (r *Requirement) Has(sid int) bool { return r.dag.HasNode(sid) }

// HasDependency reports whether from -> to is a dependency.
func (r *Requirement) HasDependency(from, to int) bool { return r.dag.HasEdge(from, to) }

// Downstream returns the services that directly consume sid's output.
func (r *Requirement) Downstream(sid int) []int { return r.dag.Succ(sid) }

// Upstream returns the services whose output sid directly consumes.
func (r *Requirement) Upstream(sid int) []int { return r.dag.Pred(sid) }

// InDegree returns the number of upstream services of sid.
func (r *Requirement) InDegree(sid int) int { return r.dag.InDegree(sid) }

// OutDegree returns the number of downstream services of sid.
func (r *Requirement) OutDegree(sid int) int { return r.dag.OutDegree(sid) }

// Edges returns all dependency edges in lexicographic order.
func (r *Requirement) Edges() [][2]int { return r.dag.Edges() }

// TopoOrder returns the services in a deterministic topological order.
func (r *Requirement) TopoOrder() []int {
	order, err := r.dag.TopoSort()
	if err != nil {
		return nil
	}
	return order
}

// DAG returns a copy of the underlying dependency graph.
func (r *Requirement) DAG() *graph.Digraph { return r.dag.Clone() }

// Clone returns a deep copy of r.
func (r *Requirement) Clone() *Requirement { return &Requirement{dag: r.dag.Clone()} }

// Equal reports whether two requirements have identical services and edges.
func (r *Requirement) Equal(o *Requirement) bool { return r.dag.Equal(o.dag) }

// SubFrom returns the sub-requirement induced by the services reachable from
// sid (including sid). This is what a node forwards downstream in the sFlow
// protocol once its own service is accounted for. Note that a merging
// service inside the result can lose in-edges whose tails are outside the
// reachable set; the protocol tracks the original in-degrees separately.
func (r *Requirement) SubFrom(sid int) *Requirement {
	return &Requirement{dag: r.dag.InducedSubgraph(r.dag.Reachable(sid))}
}

// String renders the requirement as its edge list.
func (r *Requirement) String() string {
	return fmt.Sprintf("require%v", r.Edges())
}

// Shape classifies the topology of a requirement (the progression of forms
// in Sec 2.1 and Sec 3.1 of the paper).
type Shape int

const (
	// ShapePath is a single chain of services (Fig 1).
	ShapePath Shape = iota + 1
	// ShapeTree has a single upstream per service but splits are allowed
	// (service multicast trees).
	ShapeTree
	// ShapeDisjointPaths is a source fanning out into vertex-disjoint
	// chains that all end at the same sink (Fig 3).
	ShapeDisjointPaths
	// ShapeGeneral is any other DAG, with merging and splitting services
	// interleaved (Fig 5).
	ShapeGeneral
)

// String returns a human-readable shape name.
func (s Shape) String() string {
	switch s {
	case ShapePath:
		return "path"
	case ShapeTree:
		return "tree"
	case ShapeDisjointPaths:
		return "disjoint-paths"
	case ShapeGeneral:
		return "general"
	default:
		return fmt.Sprintf("Shape(%d)", int(s))
	}
}

// Shape classifies a validated requirement.
func (r *Requirement) Shape() Shape {
	isPath := true
	isTree := true
	for _, s := range r.Services() {
		if r.InDegree(s) > 1 {
			isTree = false
		}
		if r.InDegree(s) > 1 || r.OutDegree(s) > 1 {
			isPath = false
		}
	}
	if isPath {
		return ShapePath
	}
	if isTree {
		return ShapeTree
	}
	if r.isDisjointPaths() {
		return ShapeDisjointPaths
	}
	return ShapeGeneral
}

// isDisjointPaths reports whether the requirement is a set of >= 2 internally
// disjoint chains from the source to a single sink.
func (r *Requirement) isDisjointPaths() bool {
	sinks := r.Sinks()
	if len(sinks) != 1 {
		return false
	}
	src, dst := r.Source(), sinks[0]
	if r.OutDegree(src) < 2 || r.InDegree(dst) < 2 {
		return false
	}
	for _, s := range r.Services() {
		if s == src || s == dst {
			continue
		}
		if r.InDegree(s) != 1 || r.OutDegree(s) != 1 {
			return false
		}
	}
	return true
}

// PathServices returns the services of a ShapePath requirement in chain
// order, or nil if the requirement is not a single path.
func (r *Requirement) PathServices() []int {
	if r.Shape() != ShapePath {
		return nil
	}
	order := make([]int, 0, r.NumServices())
	for s := r.Source(); ; {
		order = append(order, s)
		next := r.Downstream(s)
		if len(next) == 0 {
			break
		}
		s = next[0]
	}
	if len(order) != r.NumServices() {
		return nil
	}
	return order
}

// Junctions returns the services where streams split or merge (out-degree or
// in-degree above one), plus the source and all sinks — the anchor points of
// the reduction heuristics. Ascending order.
func (r *Requirement) Junctions() []int {
	set := map[int]struct{}{r.Source(): {}}
	for _, s := range r.Sinks() {
		set[s] = struct{}{}
	}
	for _, s := range r.Services() {
		if r.InDegree(s) > 1 || r.OutDegree(s) > 1 {
			set[s] = struct{}{}
		}
	}
	out := make([]int, 0, len(set))
	for s := range set {
		out = append(out, s)
	}
	sort.Ints(out)
	return out
}
