package require

import (
	"encoding/json"
	"testing"
)

// FuzzRequirementJSON asserts that any JSON the decoder accepts describes a
// valid requirement and survives a re-encode/decode round trip.
func FuzzRequirementJSON(f *testing.F) {
	f.Add(`{"services":[1,2,3],"edges":[[1,2],[2,3]]}`)
	f.Add(`{"services":[1,2],"edges":[[1,2]]}`)
	f.Add(`{"services":[],"edges":[]}`)
	f.Add(`{"services":[1,2,3],"edges":[[1,2],[2,3],[3,1]]}`)
	f.Add(`not json`)
	f.Fuzz(func(t *testing.T, input string) {
		var r Requirement
		if err := json.Unmarshal([]byte(input), &r); err != nil {
			return
		}
		// Accepted => structurally valid.
		if err := r.Validate(); err != nil {
			t.Fatalf("decoder accepted invalid requirement: %v", err)
		}
		data, err := json.Marshal(&r)
		if err != nil {
			t.Fatalf("re-encode: %v", err)
		}
		var back Requirement
		if err := json.Unmarshal(data, &back); err != nil {
			t.Fatalf("own output rejected: %v", err)
		}
		if !r.Equal(&back) {
			t.Fatal("round trip changed requirement")
		}
		// Derived views must be internally consistent.
		if len(r.TopoOrder()) != r.NumServices() {
			t.Fatal("topo order incomplete")
		}
		chainsum := 0
		for _, sid := range r.Services() {
			chainsum += r.OutDegree(sid)
		}
		if chainsum != r.NumDependencies() {
			t.Fatal("degree sum disagrees with edge count")
		}
	})
}
