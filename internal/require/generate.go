package require

import (
	"fmt"
	"math/rand"
)

// GeneratePath returns a chain requirement over services 1..n.
func GeneratePath(n int) (*Requirement, error) {
	if n < 2 {
		return nil, fmt.Errorf("require: path length %d < 2", n)
	}
	sids := make([]int, n)
	for i := range sids {
		sids[i] = i + 1
	}
	return NewPath(sids...)
}

// GenerateDisjoint returns a requirement of `branches` vertex-disjoint chains
// from a common source to a common sink (Fig 3 of the paper). Each branch
// has a length drawn uniformly from [minLen, maxLen] intermediate services.
func GenerateDisjoint(rng *rand.Rand, branches, minLen, maxLen int) (*Requirement, error) {
	if branches < 2 {
		return nil, fmt.Errorf("require: need >= 2 branches, got %d", branches)
	}
	if minLen < 1 || maxLen < minLen {
		return nil, fmt.Errorf("require: bad branch length range [%d,%d]", minLen, maxLen)
	}
	r := New()
	src := 1
	next := 2
	var branchEnds []int
	for b := 0; b < branches; b++ {
		length := minLen + rng.Intn(maxLen-minLen+1)
		prev := src
		for i := 0; i < length; i++ {
			r.AddDependency(prev, next)
			prev = next
			next++
		}
		branchEnds = append(branchEnds, prev)
	}
	sink := next
	for _, e := range branchEnds {
		r.AddDependency(e, sink)
	}
	if err := r.Validate(); err != nil {
		return nil, err
	}
	return r, nil
}

// GenerateSplitMerge returns a diamond-style requirement: a chain of `lead`
// services, then a split into `branches` parallel chains of one service each,
// a merge, and a chain of `tail` services (the split-and-merge topology of
// Fig 8).
func GenerateSplitMerge(lead, branches, tail int) (*Requirement, error) {
	if branches < 2 {
		return nil, fmt.Errorf("require: need >= 2 branches, got %d", branches)
	}
	if lead < 1 || tail < 1 {
		return nil, fmt.Errorf("require: lead and tail must be >= 1")
	}
	r := New()
	next := 1
	prev := next
	next++
	for i := 1; i < lead; i++ {
		r.AddDependency(prev, next)
		prev = next
		next++
	}
	split := prev
	merge := next + branches
	for b := 0; b < branches; b++ {
		mid := next
		next++
		r.AddDependency(split, mid)
		r.AddDependency(mid, merge)
	}
	prev = merge
	next = merge + 1
	for i := 0; i < tail; i++ {
		r.AddDependency(prev, next)
		prev = next
		next++
	}
	if err := r.Validate(); err != nil {
		return nil, err
	}
	return r, nil
}

// GenerateTree returns a service multicast tree over services 1..n: every
// service except the root consumes exactly one earlier service, and leaves
// are sinks (the tree form of service federation the paper discusses, where
// one source serves several consumer groups). maxFanout bounds each
// service's out-degree (0 = unbounded).
func GenerateTree(rng *rand.Rand, n, maxFanout int) (*Requirement, error) {
	if n < 2 {
		return nil, fmt.Errorf("require: tree needs >= 2 services, got %d", n)
	}
	r := New()
	for s := 1; s <= n; s++ {
		r.AddService(s)
	}
	for s := 2; s <= n; s++ {
		parent := 1 + rng.Intn(s-1)
		for maxFanout > 0 && r.OutDegree(parent) >= maxFanout {
			parent = 1 + rng.Intn(s-1)
		}
		r.AddDependency(parent, s)
	}
	if err := r.Validate(); err != nil {
		return nil, err
	}
	return r, nil
}

// DAGConfig controls GenerateDAG.
type DAGConfig struct {
	// Services is the number of required services (>= 3).
	Services int
	// EdgeProb is the probability of each admissible forward edge beyond
	// the connecting backbone (0 keeps a near-tree, 1 densifies fully).
	EdgeProb float64
	// MaxFan bounds both in- and out-degree (0 = unbounded).
	MaxFan int
}

// GenerateDAG returns a random general requirement over services 1..n with a
// single source and a single sink: services are arranged in a random
// topological line; each service (except the first) consumes at least one
// earlier service; extra forward edges appear with probability EdgeProb;
// services with no consumer are wired to the final (sink) service.
func GenerateDAG(rng *rand.Rand, cfg DAGConfig) (*Requirement, error) {
	n := cfg.Services
	if n < 3 {
		return nil, fmt.Errorf("require: need >= 3 services for a general DAG, got %d", n)
	}
	if cfg.EdgeProb < 0 || cfg.EdgeProb > 1 {
		return nil, fmt.Errorf("require: EdgeProb %v out of [0,1]", cfg.EdgeProb)
	}
	fanOK := func(deg int) bool { return cfg.MaxFan == 0 || deg < cfg.MaxFan }
	r := New()
	for s := 1; s <= n; s++ {
		r.AddService(s)
	}
	// Backbone: each service after the first consumes one random earlier
	// service (keeps everything reachable from service 1, the source).
	for s := 2; s <= n; s++ {
		from := 1 + rng.Intn(s-1)
		for !fanOK(r.OutDegree(from)) {
			from = 1 + rng.Intn(s-1)
		}
		r.AddDependency(from, s)
	}
	// Extra forward edges.
	for a := 1; a < n; a++ {
		for b := a + 1; b <= n; b++ {
			if r.HasDependency(a, b) {
				continue
			}
			if !fanOK(r.OutDegree(a)) || !fanOK(r.InDegree(b)) {
				continue
			}
			if rng.Float64() < cfg.EdgeProb {
				r.AddDependency(a, b)
			}
		}
	}
	// Funnel every dangling sink (other than n) into n so the requirement
	// has a single sink, matching the paper's examples.
	for s := 1; s < n; s++ {
		if r.OutDegree(s) == 0 {
			r.AddDependency(s, n)
		}
	}
	if err := r.Validate(); err != nil {
		return nil, err
	}
	return r, nil
}
