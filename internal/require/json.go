package require

import (
	"encoding/json"
	"fmt"
)

// requirementJSON is the wire form of a Requirement.
type requirementJSON struct {
	Services []int    `json:"services"`
	Edges    [][2]int `json:"edges"`
}

// MarshalJSON encodes the requirement as {"services": [...], "edges": [[a,b], ...]}.
func (r *Requirement) MarshalJSON() ([]byte, error) {
	return json.Marshal(requirementJSON{Services: r.Services(), Edges: r.Edges()})
}

// UnmarshalJSON decodes and validates a requirement.
func (r *Requirement) UnmarshalJSON(data []byte) error {
	var w requirementJSON
	if err := json.Unmarshal(data, &w); err != nil {
		return fmt.Errorf("require: decode: %w", err)
	}
	dec := New()
	for _, s := range w.Services {
		dec.AddService(s)
	}
	for _, e := range w.Edges {
		dec.AddDependency(e[0], e[1])
	}
	if err := dec.Validate(); err != nil {
		return err
	}
	*r = *dec
	return nil
}
