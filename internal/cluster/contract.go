// Contracted hierarchical routing for large overlays.
//
// The classic Federate in this package prices cluster pairs from a full
// all-pairs table and clusters by k-medoids over per-node shortest-latency
// runs — both O(N·Dijkstra), which defeats the point on a 50k-node overlay.
// The contracted path replaces them with machinery whose cost scales with
// edges and clusters, not nodes:
//
//   - BuildBFS clusters the overlay with one multi-source BFS from k evenly
//     spaced seeds — O(V+E), deterministic.
//   - Contract collapses the overlay into a k-node cluster digraph (the best
//     boundary link per ordered cluster pair) implementing qos.Graph, so
//     inter-cluster routing is a shortest-widest run over k nodes.
//   - FederateContracted picks one hosting cluster per required service on
//     the contracted graph, then solves the instance-level problem inside
//     the union of the chosen clusters over a lazy demand-driven table —
//     the only per-node routing that ever runs is for the slot rows of the
//     few clusters that won.
package cluster

import (
	"fmt"
	"sort"

	"sflow/internal/abstract"
	"sflow/internal/overlay"
	"sflow/internal/qos"
	"sflow/internal/reduce"
	"sflow/internal/require"
)

// BuildBFS partitions the overlay into (at most) k clusters with one
// multi-source BFS over the undirected view of the link graph, seeded at k
// evenly spaced NIDs of the sorted node list. Nodes unreachable from every
// seed join cluster 0. Deterministic: the frontier is processed in insertion
// order and neighbors are visited ascending. O(V + E), no routing.
func BuildBFS(ov *overlay.Overlay, k int) (*Clustering, error) {
	nodes := ov.Nodes()
	if k < 1 || k > len(nodes) {
		return nil, fmt.Errorf("cluster: k=%d out of range [1,%d]", k, len(nodes))
	}
	seeds := make([]int, k)
	for i := range seeds {
		seeds[i] = nodes[i*len(nodes)/k]
	}
	member := make(map[int]int, len(nodes))
	queue := make([]int, 0, len(nodes))
	for ci, s := range seeds {
		if _, ok := member[s]; !ok {
			member[s] = ci
			queue = append(queue, s)
		}
	}
	neighbors := make([]int, 0, 16)
	for head := 0; head < len(queue); head++ {
		u := queue[head]
		neighbors = neighbors[:0]
		for _, a := range ov.Out(u) {
			neighbors = append(neighbors, a.To)
		}
		for _, a := range ov.In(u) {
			neighbors = append(neighbors, a.To)
		}
		sort.Ints(neighbors)
		for _, v := range neighbors {
			if _, ok := member[v]; !ok {
				member[v] = member[u]
				queue = append(queue, v)
			}
		}
	}
	for _, n := range nodes {
		if _, ok := member[n]; !ok {
			member[n] = 0
		}
	}
	return &Clustering{Medoids: seeds, Member: member}, nil
}

// ClusterGraph is the contracted digraph of a clustering: one node per
// cluster id, and for every ordered cluster pair connected by at least one
// boundary link, one arc labelled with the best such link (widest bandwidth,
// then lowest latency). It implements qos.Graph, so the shortest-widest
// machinery routes over it unchanged.
type ClusterGraph struct {
	nodes []int
	out   [][]qos.Arc
}

// Contract collapses ov along cl. O(E); deterministic (the per-pair best is
// order-independent and out-arc lists are sorted by destination cluster).
func Contract(ov *overlay.Overlay, cl *Clustering) *ClusterGraph {
	k := len(cl.Medoids)
	best := make([]map[int]qos.Metric, k)
	for _, l := range ov.Links() {
		a, b := cl.Member[l.From], cl.Member[l.To]
		if a == b {
			continue
		}
		if best[a] == nil {
			best[a] = make(map[int]qos.Metric)
		}
		m := qos.Metric{Bandwidth: l.Bandwidth, Latency: l.Latency}
		if cur, ok := best[a][b]; !ok || m.Better(cur) {
			best[a][b] = m
		}
	}
	g := &ClusterGraph{nodes: make([]int, k), out: make([][]qos.Arc, k)}
	for c := 0; c < k; c++ {
		g.nodes[c] = c
		for to, m := range best[c] {
			g.out[c] = append(g.out[c], qos.Arc{To: to, Bandwidth: m.Bandwidth, Latency: m.Latency})
		}
		sort.Slice(g.out[c], func(i, j int) bool { return g.out[c][i].To < g.out[c][j].To })
	}
	return g
}

// Nodes implements qos.Graph: the cluster ids, ascending.
func (g *ClusterGraph) Nodes() []int { return g.nodes }

// Out implements qos.Graph: the contracted out-arcs of a cluster. The
// returned slice must not be modified.
func (g *ClusterGraph) Out(u int) []qos.Arc {
	if u < 0 || u >= len(g.out) {
		return nil
	}
	return g.out[u]
}

// FederateContracted is the large-overlay hierarchical federation: BFS
// clustering, cluster-level service placement routed on the contracted
// digraph, then an instance-level solve inside the union of the chosen
// clusters over a lazy table. workers bounds the slot-row prefetch fan-out
// of that final solve (<= 0 means GOMAXPROCS).
//
// The total routing work is O(E) clustering + k-node inter-cluster runs +
// one shortest-widest row per slot instance of the chosen clusters — nothing
// scales with the overlay's node count. The trade is fidelity: cluster pairs
// are priced by their single best boundary link rather than true best
// member-pair routes, so the chosen clusters (and hence the flow) may differ
// from classic Federate's; the returned flow is still a valid federation
// with exact instance-level routes.
func FederateContracted(ov *overlay.Overlay, req *require.Requirement, src, k, workers int) (*Result, error) {
	if got := ov.SIDOf(src); got != req.Source() {
		return nil, fmt.Errorf("cluster: source instance %d provides service %d, requirement starts at %d",
			src, got, req.Source())
	}
	cl, err := BuildBFS(ov, k)
	if err != nil {
		return nil, err
	}
	cg := Contract(ov, cl)

	hosts := make(map[int]map[int]bool) // sid -> cluster set
	for _, sid := range req.Services() {
		hosts[sid] = make(map[int]bool)
		for _, nid := range ov.InstancesOf(sid) {
			hosts[sid][cl.Member[nid]] = true
		}
		if len(hosts[sid]) == 0 {
			return nil, fmt.Errorf("%w: service %d has no instance in any cluster", ErrInfeasible, sid)
		}
	}

	// Inter-cluster quality from shortest-widest runs over the k-node
	// contracted graph, one memoized row per source cluster actually used.
	rows := make(map[int]*qos.Result)
	clusterMetric := func(a, b int) qos.Metric {
		if a == b {
			return qos.Empty
		}
		row, ok := rows[a]
		if !ok {
			row = qos.ShortestWidest(cg, a)
			rows[a] = row
		}
		return row.Metric(b)
	}

	chosen := map[int]int{req.Source(): cl.Member[src]}
	for _, sid := range req.TopoOrder() {
		if sid == req.Source() {
			continue
		}
		bestC := -1
		bestM := qos.Unreachable
		for cid := range hosts[sid] {
			m := qos.Empty
			for _, up := range req.Upstream(sid) {
				m = m.Concat(clusterMetric(chosen[up], cid))
				if !m.Reachable() {
					break
				}
			}
			if !m.Reachable() {
				continue
			}
			if bestC == -1 || m.Better(bestM) || (m == bestM && cid < bestC) {
				bestC, bestM = cid, m
			}
		}
		if bestC == -1 {
			return nil, fmt.Errorf("%w: no cluster reaches service %d", ErrInfeasible, sid)
		}
		chosen[sid] = bestC
	}

	// Instance-level solve inside the chosen clusters plus the corridor
	// clusters the inter-cluster routes pass through — without the corridors
	// two chosen clusters can be adjacent on the contracted graph only via
	// clusters that host no slot, and the expanded sub-overlay would
	// disconnect them. Expansion stays lazy: the sub-overlay keeps every
	// member of a kept cluster (relays stay available), but only slot rows
	// are ever routed.
	keep := make(map[int]bool)
	for _, cid := range chosen {
		keep[cid] = true
	}
	for _, sid := range req.TopoOrder() {
		for _, up := range req.Upstream(sid) {
			a, b := chosen[up], chosen[sid]
			if a == b {
				continue
			}
			row, ok := rows[a]
			if !ok {
				row = qos.ShortestWidest(cg, a)
				rows[a] = row
			}
			for _, cid := range row.PathTo(b) {
				keep[cid] = true
			}
		}
	}
	sub := overlay.New()
	for _, inst := range ov.Instances() {
		if keep[cl.Member[inst.NID]] {
			if err := sub.AddInstance(inst.NID, inst.SID, inst.Host); err != nil {
				return nil, err
			}
		}
	}
	for _, l := range ov.Links() {
		if keep[cl.Member[l.From]] && keep[cl.Member[l.To]] {
			if err := sub.AddLink(l.From, l.To, l.Bandwidth, l.Latency); err != nil {
				return nil, err
			}
		}
	}
	r, err := solveLazy(sub, req, src, workers)
	if err != nil {
		// The contracted expansion can prove infeasible even when the full
		// overlay is not: clustering walks the undirected link view, so a
		// kept corridor cluster guarantees undirected connectivity only — a
		// DIRECTED instance-level route may thread clusters that host no
		// slot and lie on no contracted path. Escalate to the whole overlay
		// rather than fail: the table stays demand-driven (only slot rows
		// route), so the fallback costs one lazy solve, and the contracted
		// machinery still did its job as a placement guide.
		r, err = solveLazy(ov, req, src, workers)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrInfeasible, err)
		}
	}
	return &Result{Flow: r.Flow, Metric: r.Metric, ClusterOf: chosen, K: len(cl.Medoids)}, nil
}

// solveLazy runs the instance-level federation over ov with a demand-driven
// table: one shortest-widest row per slot source, nothing proportional to the
// overlay's node count.
func solveLazy(ov *overlay.Overlay, req *require.Requirement, src, workers int) (*reduce.Result, error) {
	ag, err := abstract.BuildLazy(ov, req, workers, nil)
	if err != nil {
		return nil, err
	}
	return reduce.Solve(ag, src, nil)
}
