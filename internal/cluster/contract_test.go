package cluster

import (
	"errors"
	"reflect"
	"testing"

	"sflow/internal/overlay"
	"sflow/internal/qos"
	"sflow/internal/require"
	"sflow/internal/scenario"
)

func largeScenario(t *testing.T, seed int64, nodes int) *scenario.Scenario {
	t.Helper()
	s, err := scenario.GenerateLarge(scenario.LargeConfig{
		Seed: seed, Nodes: nodes, Services: 4, InstancesPerService: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestBuildBFSPartition(t *testing.T) {
	s := largeScenario(t, 1, 60)
	for _, k := range []int{1, 3, 8} {
		cl, err := BuildBFS(s.Overlay, k)
		if err != nil {
			t.Fatal(err)
		}
		if len(cl.Medoids) != k {
			t.Fatalf("k=%d: %d seeds", k, len(cl.Medoids))
		}
		if len(cl.Member) != s.Overlay.NumInstances() {
			t.Fatalf("k=%d: %d members", k, len(cl.Member))
		}
		for nid, ci := range cl.Member {
			if ci < 0 || ci >= k {
				t.Fatalf("k=%d: node %d in cluster %d", k, nid, ci)
			}
		}
		// Seeds belong to their own cluster (the first seed wins a tie).
		seen := map[int]bool{}
		for ci, seed := range cl.Medoids {
			if !seen[seed] && cl.Member[seed] != ci {
				t.Fatalf("k=%d: seed %d assigned to cluster %d, want %d", k, seed, cl.Member[seed], ci)
			}
			seen[seed] = true
		}
		again, err := BuildBFS(s.Overlay, k)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(cl, again) {
			t.Fatalf("k=%d: BuildBFS not deterministic", k)
		}
	}
}

func TestBuildBFSRejectsBadK(t *testing.T) {
	s := largeScenario(t, 1, 30)
	for _, k := range []int{0, -1, 31} {
		if _, err := BuildBFS(s.Overlay, k); err == nil {
			t.Errorf("k=%d accepted", k)
		}
	}
}

func TestContractBestBoundaryLink(t *testing.T) {
	s := largeScenario(t, 2, 60)
	cl, err := BuildBFS(s.Overlay, 4)
	if err != nil {
		t.Fatal(err)
	}
	cg := Contract(s.Overlay, cl)

	if got := cg.Nodes(); !reflect.DeepEqual(got, []int{0, 1, 2, 3}) {
		t.Fatalf("Nodes() = %v", got)
	}
	if cg.Out(-1) != nil || cg.Out(4) != nil {
		t.Fatal("out-of-range Out() should be nil")
	}

	// Recompute the per-ordered-pair best boundary link by hand and check
	// every contracted arc matches it.
	want := map[[2]int]qos.Metric{}
	for _, l := range s.Overlay.Links() {
		a, b := cl.Member[l.From], cl.Member[l.To]
		if a == b {
			continue
		}
		m := qos.Metric{Bandwidth: l.Bandwidth, Latency: l.Latency}
		if cur, ok := want[[2]int{a, b}]; !ok || m.Better(cur) {
			want[[2]int{a, b}] = m
		}
	}
	arcs := 0
	for _, c := range cg.Nodes() {
		prev := -1
		for _, a := range cg.Out(c) {
			if a.To <= prev {
				t.Fatalf("cluster %d out-arcs not sorted: %v", c, cg.Out(c))
			}
			prev = a.To
			m, ok := want[[2]int{c, a.To}]
			if !ok {
				t.Fatalf("arc %d->%d has no boundary link", c, a.To)
			}
			if (qos.Metric{Bandwidth: a.Bandwidth, Latency: a.Latency}) != m {
				t.Fatalf("arc %d->%d = %d/%d, want %v", c, a.To, a.Bandwidth, a.Latency, m)
			}
			arcs++
		}
	}
	if arcs != len(want) {
		t.Fatalf("contracted graph has %d arcs, boundary pairs = %d", arcs, len(want))
	}
}

func TestFederateContractedSolves(t *testing.T) {
	s := largeScenario(t, 3, 200)
	r, err := FederateContracted(s.Overlay, s.Req, s.SourceNID, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	if r.K != 8 {
		t.Fatalf("K = %d, want 8", r.K)
	}
	if !r.Flow.Complete(s.Req) {
		t.Fatal("contracted federation returned an incomplete flow")
	}
	for _, sid := range s.Req.Services() {
		if _, ok := r.ClusterOf[sid]; !ok {
			t.Fatalf("no cluster chosen for service %d", sid)
		}
	}
	again, err := FederateContracted(s.Overlay, s.Req, s.SourceNID, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	if again.Metric != r.Metric || !reflect.DeepEqual(again.ClusterOf, r.ClusterOf) {
		t.Fatal("FederateContracted not deterministic")
	}
}

func TestFederateContractedRejectsWrongSource(t *testing.T) {
	s := largeScenario(t, 4, 60)
	// Any relay instance provides service 5, not the requirement's source.
	relay := s.Overlay.InstancesOf(5)[0]
	if _, err := FederateContracted(s.Overlay, s.Req, relay, 4, 1); err == nil {
		t.Fatal("wrong-source instance accepted")
	}
	if _, err := FederateContracted(s.Overlay, s.Req, s.SourceNID, 0, 1); err == nil {
		t.Fatal("k=0 accepted")
	}
}

func TestFederateContractedInfeasibleMissingService(t *testing.T) {
	req, err := require.GeneratePath(3)
	if err != nil {
		t.Fatal(err)
	}
	o := overlay.New()
	// Services 1 and 2 are hosted; service 3 has no instance anywhere
	// (GeneratePath numbers the chain 1..n).
	for nid, sid := range []int{1, 2, 2, 1} {
		if err := o.AddInstance(nid, sid, nid); err != nil {
			t.Fatal(err)
		}
	}
	for nid := 0; nid < 4; nid++ {
		if err := o.AddLink(nid, (nid+1)%4, 100, 1); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := FederateContracted(o, req, 0, 2, 1); !errors.Is(err, ErrInfeasible) {
		t.Fatalf("err = %v, want ErrInfeasible", err)
	}
}
