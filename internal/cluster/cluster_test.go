package cluster

import (
	"errors"
	"testing"

	"sflow/internal/abstract"
	"sflow/internal/exact"
	"sflow/internal/overlay"
	"sflow/internal/require"
	"sflow/internal/scenario"
)

func testScenario(t *testing.T, seed int64) *scenario.Scenario {
	t.Helper()
	s, err := scenario.Generate(scenario.Config{
		Seed: seed, NetworkSize: 20, Services: 6,
		InstancesPerService: 3, Kind: scenario.KindGeneral,
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestBuildPartition(t *testing.T) {
	s := testScenario(t, 1)
	for _, k := range []int{1, 2, 4} {
		cl, err := Build(s.Overlay, k)
		if err != nil {
			t.Fatal(err)
		}
		if len(cl.Medoids) != k {
			t.Fatalf("k=%d: %d medoids", k, len(cl.Medoids))
		}
		// Every instance is assigned to exactly one cluster; medoids
		// belong to their own cluster.
		if len(cl.Member) != s.Overlay.NumInstances() {
			t.Fatalf("k=%d: %d members", k, len(cl.Member))
		}
		total := 0
		for ci, members := range cl.Clusters() {
			total += len(members)
			found := false
			for _, m := range members {
				if m == cl.Medoids[ci] {
					found = true
				}
			}
			if !found {
				t.Fatalf("k=%d: medoid %d not in its own cluster %v", k, cl.Medoids[ci], members)
			}
		}
		if total != s.Overlay.NumInstances() {
			t.Fatalf("k=%d: clusters cover %d instances", k, total)
		}
	}
}

func TestBuildDeterministic(t *testing.T) {
	s := testScenario(t, 2)
	a, err := Build(s.Overlay, 3)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Build(s.Overlay, 3)
	if err != nil {
		t.Fatal(err)
	}
	for nid, ca := range a.Member {
		if b.Member[nid] != ca {
			t.Fatal("clustering not deterministic")
		}
	}
}

func TestBuildValidation(t *testing.T) {
	s := testScenario(t, 3)
	if _, err := Build(s.Overlay, 0); err == nil {
		t.Fatal("k=0 accepted")
	}
	if _, err := Build(s.Overlay, s.Overlay.NumInstances()+1); err == nil {
		t.Fatal("k > instances accepted")
	}
}

func TestFederateHierarchical(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		s := testScenario(t, seed)
		res, err := Federate(s.Overlay, s.Req, s.SourceNID, 4)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := res.Flow.Validate(s.Req, s.Overlay); err != nil {
			t.Fatalf("seed %d: invalid flow: %v", seed, err)
		}
		// Hierarchical restriction can never beat the global optimum.
		ag, err := abstract.Build(s.Overlay, s.Req)
		if err != nil {
			t.Fatal(err)
		}
		opt, err := exact.Solve(ag, s.SourceNID, exact.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if res.Metric.Better(opt.Metric) {
			t.Fatalf("seed %d: hierarchical %+v beats optimal %+v", seed, res.Metric, opt.Metric)
		}
		// Every chosen instance lives in the cluster chosen for its
		// service... or at least the cluster set used must cover the
		// assignment (relays aside).
		cl, err := Build(s.Overlay, 4)
		if err != nil {
			t.Fatal(err)
		}
		usedClusters := make(map[int]bool)
		for _, cid := range res.ClusterOf {
			usedClusters[cid] = true
		}
		for sid, nid := range res.Flow.Assignment() {
			if !usedClusters[cl.Member[nid]] {
				t.Fatalf("seed %d: service %d placed outside the chosen clusters", seed, sid)
			}
		}
	}
}

func TestFederateSingleClusterEqualsHeuristic(t *testing.T) {
	// With k=1 the hierarchy is a no-op: the whole overlay is one cluster.
	s := testScenario(t, 5)
	res, err := Federate(s.Overlay, s.Req, s.SourceNID, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Flow.Validate(s.Req, s.Overlay); err != nil {
		t.Fatal(err)
	}
}

func TestFederateInfeasible(t *testing.T) {
	// Service 3 exists but only in a cluster no upstream can reach.
	o := overlay.New()
	for _, in := range [][2]int{{1, 1}, {2, 2}, {3, 3}} {
		if err := o.AddInstance(in[0], in[1], -1); err != nil {
			t.Fatal(err)
		}
	}
	if err := o.AddLink(1, 2, 10, 1); err != nil {
		t.Fatal(err)
	}
	req, err := require.NewPath(1, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Federate(o, req, 1, 2); !errors.Is(err, ErrInfeasible) {
		t.Fatalf("err = %v, want ErrInfeasible", err)
	}
	if _, err := Federate(o, req, 2, 2); err == nil {
		t.Fatal("wrong source accepted")
	}
}
