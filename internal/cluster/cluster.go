// Package cluster implements a hierarchical, cluster-based federation in
// the style the paper attributes to Jin and Nahrstedt: "the service overlay
// network is first organized into a cluster network. The service path
// finding algorithm is then applied hierarchically in a divide-and-conquer
// fashion."
//
// Instances are grouped into latency-based clusters (farthest-first
// k-medoids over shortest-latency distances); federation then decides at
// cluster granularity first — one cluster per required service, scored on
// summarised inter-cluster link quality — and solves the instance-level problem
// inside the union of the chosen clusters. The result is a fourth
// distributed-flavoured comparison point between the myopic fixed algorithm
// and full sFlow.
package cluster

import (
	"errors"
	"fmt"
	"sort"

	"sflow/internal/abstract"
	"sflow/internal/flow"
	"sflow/internal/overlay"
	"sflow/internal/qos"
	"sflow/internal/reduce"
	"sflow/internal/require"
)

// ErrInfeasible is returned when the cluster hierarchy cannot satisfy the
// requirement.
var ErrInfeasible = errors.New("cluster: no feasible hierarchical federation")

// Clustering is a partition of the overlay's instances.
type Clustering struct {
	// Medoids holds one representative NID per cluster, index = cluster id.
	Medoids []int
	// Member maps every NID to its cluster id.
	Member map[int]int
}

// Clusters returns the member NIDs of each cluster, ascending within each.
func (c *Clustering) Clusters() [][]int {
	out := make([][]int, len(c.Medoids))
	for nid, cid := range c.Member {
		out[cid] = append(out[cid], nid)
	}
	for _, m := range out {
		sort.Ints(m)
	}
	return out
}

// Build partitions the overlay into k latency-based clusters using
// farthest-first medoid selection: the first medoid is the lowest NID, each
// further medoid is the instance farthest (by symmetric shortest latency)
// from all chosen medoids; every instance joins its nearest medoid.
// Deterministic.
func Build(ov *overlay.Overlay, k int) (*Clustering, error) {
	nodes := ov.Nodes()
	if k < 1 || k > len(nodes) {
		return nil, fmt.Errorf("cluster: k=%d out of range [1,%d]", k, len(nodes))
	}
	// Symmetric latency distance from shortest-latency routes.
	dist := make(map[int]map[int]int64, len(nodes))
	for _, n := range nodes {
		res := qos.ShortestLatency(ov, n)
		dist[n] = make(map[int]int64, len(nodes))
		for _, m := range nodes {
			if r := res.Metric(m); r.Reachable() || n == m {
				dist[n][m] = r.Latency
			} else {
				dist[n][m] = -1 // unreachable
			}
		}
	}
	d := func(a, b int) int64 {
		ab, ba := dist[a][b], dist[b][a]
		switch {
		case ab >= 0 && ba >= 0:
			if ab < ba {
				return ab
			}
			return ba
		case ab >= 0:
			return ab
		case ba >= 0:
			return ba
		default:
			return 1 << 40 // disconnected pair: effectively infinite
		}
	}

	medoids := []int{nodes[0]}
	for len(medoids) < k {
		best, bestD := -1, int64(-1)
		for _, n := range nodes {
			taken := false
			for _, m := range medoids {
				if m == n {
					taken = true
					break
				}
			}
			if taken {
				continue
			}
			nearest := int64(1 << 62)
			for _, m := range medoids {
				if dd := d(n, m); dd < nearest {
					nearest = dd
				}
			}
			if nearest > bestD || (nearest == bestD && (best == -1 || n < best)) {
				best, bestD = n, nearest
			}
		}
		medoids = append(medoids, best)
	}
	sort.Ints(medoids)

	member := make(map[int]int, len(nodes))
	for _, n := range nodes {
		bestC, bestD := 0, int64(1<<62)
		for ci, m := range medoids {
			if dd := d(n, m); dd < bestD {
				bestC, bestD = ci, dd
			}
		}
		member[n] = bestC
	}
	return &Clustering{Medoids: medoids, Member: member}, nil
}

// Result is the outcome of a hierarchical federation.
type Result struct {
	// Flow is the computed service flow graph.
	Flow *flow.Graph
	// Metric is its end-to-end quality.
	Metric qos.Metric
	// ClusterOf records the cluster chosen for each service.
	ClusterOf map[int]int
	// K is the number of clusters used.
	K int
}

// Options tunes Federate's routing-table strategy.
type Options struct {
	// Lazy prices cluster pairs and solves the intra-cluster problem from
	// demand-driven tables instead of eager all-pairs computations: only the
	// rows the greedy assignment and the final solve actually read are ever
	// routed. The result is byte-identical to eager mode.
	Lazy bool
	// Workers bounds the lazy slot-row prefetch fan-out (<= 0 means
	// GOMAXPROCS). Ignored in eager mode.
	Workers int
}

// Federate runs the hierarchical algorithm: cluster the overlay into k
// groups, pick one cluster per required service greedily on summarised
// inter-cluster link quality, then solve the instance-level federation
// inside the chosen clusters with the reduction heuristics.
func Federate(ov *overlay.Overlay, req *require.Requirement, src int, k int) (*Result, error) {
	return FederateWith(ov, req, src, k, Options{})
}

// FederateWith is Federate with an explicit table strategy.
func FederateWith(ov *overlay.Overlay, req *require.Requirement, src int, k int, opts Options) (*Result, error) {
	if got := ov.SIDOf(src); got != req.Source() {
		return nil, fmt.Errorf("cluster: source instance %d provides service %d, requirement starts at %d",
			src, got, req.Source())
	}
	cl, err := Build(ov, k)
	if err != nil {
		return nil, err
	}

	// Clusters hosting each required service.
	hosts := make(map[int]map[int]bool) // sid -> cluster set
	for _, sid := range req.Services() {
		hosts[sid] = make(map[int]bool)
		for _, nid := range ov.InstancesOf(sid) {
			hosts[sid][cl.Member[nid]] = true
		}
		if len(hosts[sid]) == 0 {
			return nil, fmt.Errorf("%w: service %d has no instance in any cluster", ErrInfeasible, sid)
		}
	}

	// Cluster-level link quality: the best achievable metric between any
	// instance of one cluster and any instance of the other — the summary
	// a cluster head would advertise for its group. Memoised per pair.
	var ap qos.Table
	if opts.Lazy {
		ap = qos.NewLazyAllPairs(ov, nil)
	} else {
		ap = qos.ComputeAllPairs(ov)
	}
	members := cl.Clusters()
	memo := make(map[[2]int]qos.Metric)
	clusterMetric := func(a, b int) qos.Metric {
		if a == b {
			return qos.Empty
		}
		key := [2]int{a, b}
		if m, ok := memo[key]; ok {
			return m
		}
		best := qos.Unreachable
		for _, x := range members[a] {
			for _, y := range members[b] {
				if m := ap.Metric(x, y); m.Reachable() && m.Better(best) {
					best = m
				}
			}
		}
		memo[key] = best
		return best
	}

	// Greedy cluster assignment in topological order: the source's cluster
	// is fixed; each later service picks the hosting cluster with the best
	// bottleneck from its upstream services' clusters.
	chosen := map[int]int{req.Source(): cl.Member[src]}
	for _, sid := range req.TopoOrder() {
		if sid == req.Source() {
			continue
		}
		bestC := -1
		bestM := qos.Unreachable
		for cid := range hosts[sid] {
			m := qos.Empty
			for _, up := range req.Upstream(sid) {
				m = m.Concat(clusterMetric(chosen[up], cid))
				if !m.Reachable() {
					break
				}
			}
			if !m.Reachable() {
				continue
			}
			if bestC == -1 || m.Better(bestM) || (m == bestM && cid < bestC) {
				bestC, bestM = cid, m
			}
		}
		if bestC == -1 {
			return nil, fmt.Errorf("%w: no cluster reaches service %d", ErrInfeasible, sid)
		}
		chosen[sid] = bestC
	}

	// Instance-level solve inside the union of chosen clusters (keeping
	// every instance of those clusters so relays remain available).
	keep := make(map[int]bool)
	for _, cid := range chosen {
		for nid, member := range cl.Member {
			if member == cid {
				keep[nid] = true
			}
		}
	}
	sub := overlay.New()
	for _, inst := range ov.Instances() {
		if keep[inst.NID] {
			if err := sub.AddInstance(inst.NID, inst.SID, inst.Host); err != nil {
				return nil, err
			}
		}
	}
	for _, l := range ov.Links() {
		if keep[l.From] && keep[l.To] {
			if err := sub.AddLink(l.From, l.To, l.Bandwidth, l.Latency); err != nil {
				return nil, err
			}
		}
	}
	var ag *abstract.Graph
	if opts.Lazy {
		ag, err = abstract.BuildLazy(sub, req, opts.Workers, nil)
	} else {
		ag, err = abstract.Build(sub, req)
	}
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrInfeasible, err)
	}
	r, err := reduce.Solve(ag, src, nil)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrInfeasible, err)
	}
	return &Result{Flow: r.Flow, Metric: r.Metric, ClusterOf: chosen, K: k}, nil
}
