package session

// Enter and Exit expose the misuse detector to the blackbox tests, which use
// them to hold the in-use flag exactly as a stuck concurrent call would.
func (s *Session) Enter(op string) { s.enter(op) }
func (s *Session) Exit()           { s.exit() }
