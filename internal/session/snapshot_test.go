package session_test

import (
	"testing"

	"sflow/internal/qos"
	"sflow/internal/session"
)

// TestSnapshotIsConsistentAndImmutable pins the publication contract the
// serving daemon builds on: a Snapshot's overlay and table describe the same
// state (the table equals a from-scratch computation on the snapshot's own
// overlay), and later session events never move a published snapshot.
func TestSnapshotIsConsistentAndImmutable(t *testing.T) {
	sc := traceScenario(t, 3)
	s := session.New(sc.Overlay, session.Options{Workers: 1})

	churn := session.NewChurn(s, 3, []int{sc.SourceNID}, sc.Req.Services())
	var snaps []*session.Snapshot
	var frozen []*qos.AllPairs
	for i := 0; i < 30; i++ {
		if _, err := churn.Step(); err != nil {
			t.Fatalf("churn step %d: %v", i, err)
		}
		if i%5 == 4 {
			sn := s.Snapshot()
			snaps = append(snaps, sn)
			frozen = append(frozen, qos.ComputeAllPairsWorkers(sn.Overlay, 1))
			// Internal consistency at capture time.
			if !qos.TablesEqual(sn.AllPairs, frozen[len(frozen)-1]) {
				t.Fatalf("snapshot %d: table does not match its own overlay", len(snaps)-1)
			}
		}
	}

	// Epochs must be strictly increasing.
	for i := 1; i < len(snaps); i++ {
		if snaps[i].Epoch <= snaps[i-1].Epoch {
			t.Fatalf("epochs not strictly increasing: %d then %d", snaps[i-1].Epoch, snaps[i].Epoch)
		}
	}
	// After all the churn, every snapshot still answers from its own epoch.
	for i, sn := range snaps {
		if !qos.TablesEqual(sn.AllPairs, frozen[i]) {
			t.Fatalf("snapshot %d moved under later session events", i)
		}
		if want := qos.ComputeAllPairsWorkers(sn.Overlay, 1); !qos.TablesEqual(sn.AllPairs, want) {
			t.Fatalf("snapshot %d: overlay mutated after publication", i)
		}
	}
}

// TestSnapshotAbstractMatchesSession asserts the read-side Abstract over a
// snapshot equals the session's own cache-backed Abstract taken at the same
// instant.
func TestSnapshotAbstractMatchesSession(t *testing.T) {
	sc := traceScenario(t, 4)
	s := session.New(sc.Overlay, session.Options{Workers: 1})
	sn := s.Snapshot()

	got, gerr := sn.Abstract(sc.Req)
	want, werr := s.Abstract(sc.Req)
	if (gerr == nil) != (werr == nil) {
		t.Fatalf("error mismatch: snapshot %v, session %v", gerr, werr)
	}
	if gerr != nil {
		return
	}
	for _, sid := range sc.Req.Services() {
		g, w := got.Slots(sid), want.Slots(sid)
		if len(g) != len(w) {
			t.Fatalf("service %d: snapshot slots %v, session slots %v", sid, g, w)
		}
		for i := range g {
			if g[i] != w[i] {
				t.Fatalf("service %d slot %d: snapshot %d, session %d", sid, i, g[i], w[i])
			}
		}
	}
}
