package session_test

import (
	"reflect"
	"testing"

	"sflow/internal/abstract"
	"sflow/internal/overlay"
	"sflow/internal/qos"
	"sflow/internal/require"
	"sflow/internal/scenario"
	"sflow/internal/session"
)

// traceScenario builds the seeded workload a trace test churns.
func traceScenario(t testing.TB, seed int64) *scenario.Scenario {
	t.Helper()
	kinds := []scenario.Kind{scenario.KindGeneral, scenario.KindDisjoint, scenario.KindSplitMerge}
	s, err := scenario.Generate(scenario.Config{
		Seed: seed, NetworkSize: 20, Services: 5,
		InstancesPerService: 3, Kind: kinds[int(seed)%len(kinds)],
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// assertTableEqual asserts the session's maintained all-pairs table is
// deep-equal to a from-scratch recomputation on its current overlay.
func assertTableEqual(t *testing.T, s *session.Session, seed int64, event int) {
	t.Helper()
	got := s.AllPairs()
	want := qos.ComputeAllPairsWorkers(s.Overlay(), 1)
	if !got.Equal(want) || !want.Equal(got) {
		t.Fatalf("seed %d event %d: maintained table diverged from scratch rebuild", seed, event)
	}
}

// assertAbstractEqual asserts the session's cache-backed abstract graph is
// indistinguishable from a freshly built one: same slots, and the same metric
// and selected path on every abstract edge the requirement induces.
func assertAbstractEqual(t *testing.T, s *session.Session, req *require.Requirement, seed int64, event int) {
	t.Helper()
	got, gerr := s.Abstract(req)
	want, werr := abstract.BuildWorkers(s.Overlay(), req, 1)
	if (gerr == nil) != (werr == nil) {
		t.Fatalf("seed %d event %d: abstract error mismatch: session %v, scratch %v", seed, event, gerr, werr)
	}
	if gerr != nil {
		return
	}
	for _, sid := range req.Services() {
		if !reflect.DeepEqual(got.Slots(sid), want.Slots(sid)) {
			t.Fatalf("seed %d event %d: slots of service %d diverged", seed, event, sid)
		}
	}
	for _, e := range req.Edges() {
		for _, from := range got.Slots(e[0]) {
			for _, to := range got.Slots(e[1]) {
				if got.EdgeMetric(from, to) != want.EdgeMetric(from, to) {
					t.Fatalf("seed %d event %d: edge metric %d->%d diverged", seed, event, from, to)
				}
				if !reflect.DeepEqual(got.EdgePath(from, to), want.EdgePath(from, to)) {
					t.Fatalf("seed %d event %d: edge path %d->%d diverged", seed, event, from, to)
				}
			}
		}
	}
}

// TestEquivalenceOracleTrace is the headline property test: over long seeded
// random mutation traces, the session's incrementally maintained QoS table
// and abstract graph are deep-equal — selected paths included — to
// from-scratch rebuilds on the mutated overlay after EVERY event.
func TestEquivalenceOracleTrace(t *testing.T) {
	seeds, events := 5, 1000
	if testing.Short() {
		seeds, events = 2, 250
	}
	for seed := int64(0); seed < int64(seeds); seed++ {
		sc := traceScenario(t, seed)
		// Alternate worker counts so the flush fan-out is exercised both
		// sequentially and in parallel (results must be identical).
		s := session.New(sc.Overlay, session.Options{Workers: int(seed % 3)})
		churn := session.NewChurn(s, seed*7+1, []int{sc.SourceNID}, sc.Req.Services())
		for e := 1; e <= events; e++ {
			ev, err := churn.Step()
			if err != nil {
				t.Fatalf("seed %d event %d: %v", seed, e, err)
			}
			assertTableEqual(t, s, seed, e)
			if e%10 == 0 {
				assertAbstractEqual(t, s, sc.Req, seed, e)
			}
			_ = ev
		}
		st := s.Stats()
		// A churn step is at least one session event (an instance join also
		// adds links, each its own event).
		if st.Events < int64(events) {
			t.Fatalf("seed %d: %d events recorded, want >= %d", seed, st.Events, events)
		}
		if st.RecomputedSources == 0 {
			t.Fatalf("seed %d: churn trace recomputed no sources", seed)
		}
		if st.SavedSources == 0 {
			t.Fatalf("seed %d: incremental maintenance saved nothing over %d events — dirty sets degenerate to full rebuilds", seed, events)
		}
	}
}

// TestBatchedEventsSingleFlush asserts events between solves coalesce: the
// dirty sets union, one flush pays for the whole batch, and the result still
// matches the oracle.
func TestBatchedEventsSingleFlush(t *testing.T) {
	sc := traceScenario(t, 11)
	s := session.New(sc.Overlay, session.Options{})
	churn := session.NewChurn(s, 3, []int{sc.SourceNID}, sc.Req.Services())
	flushes := s.Stats().Flushes
	for e := 0; e < 25; e++ {
		if _, err := churn.Step(); err != nil {
			t.Fatal(err)
		}
	}
	if got := s.Stats().Flushes; got != flushes {
		t.Fatalf("mutations alone triggered %d flushes", got-flushes)
	}
	dirty := s.Dirty()
	if len(dirty) == 0 {
		t.Fatal("25 mutations left no dirty sources")
	}
	if n := s.Flush(); n != len(dirty) {
		t.Fatalf("Flush recomputed %d sources, Dirty promised %d", n, len(dirty))
	}
	if len(s.Dirty()) != 0 {
		t.Fatal("dirty set survives a flush")
	}
	if s.Flush() != 0 {
		t.Fatal("second flush recomputed sources with nothing dirty")
	}
	assertTableEqual(t, s, 11, 25)
}

// TestSessionCloneIsolation asserts the session owns a private overlay: its
// events do not leak into the caller's overlay and vice versa.
func TestSessionCloneIsolation(t *testing.T) {
	sc := traceScenario(t, 2)
	linksBefore := sc.Overlay.NumLinks()
	s := session.New(sc.Overlay, session.Options{})
	links := s.Overlay().Links()
	if err := s.RemoveLink(links[0].From, links[0].To); err != nil {
		t.Fatal(err)
	}
	if sc.Overlay.NumLinks() != linksBefore {
		t.Fatal("session mutation leaked into the caller's overlay")
	}
	if err := sc.Overlay.RemoveLink(links[1].From, links[1].To); err != nil {
		t.Fatal(err)
	}
	if s.Overlay().NumLinks() != linksBefore-1 {
		t.Fatal("caller mutation leaked into the session's overlay")
	}
	assertTableEqual(t, s, 2, 0)
}

// TestSessionAbstractErrorParity asserts the cache-backed abstract build
// fails exactly when the stateless one would: a required service with no
// instance left.
func TestSessionAbstractErrorParity(t *testing.T) {
	ov := overlay.New()
	for _, in := range [][3]int{{1, 1, -1}, {2, 2, -1}, {3, 3, -1}} {
		if err := ov.AddInstance(in[0], in[1], in[2]); err != nil {
			t.Fatal(err)
		}
	}
	for _, l := range [][2]int{{1, 2}, {2, 3}} {
		if err := ov.AddLink(l[0], l[1], 100, 10); err != nil {
			t.Fatal(err)
		}
	}
	req, err := require.NewPath(1, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	s := session.New(ov, session.Options{})
	if _, err := s.Abstract(req); err != nil {
		t.Fatalf("abstract over intact overlay: %v", err)
	}
	if err := s.RemoveInstance(2); err != nil {
		t.Fatal(err)
	}
	_, gerr := s.Abstract(req)
	_, werr := abstract.BuildWorkers(s.Overlay(), req, 1)
	if gerr == nil || werr == nil {
		t.Fatalf("missing required service not rejected: session %v, scratch %v", gerr, werr)
	}
}

// TestSessionRejectsInvalidEvents asserts event methods surface the overlay
// mutators' validation errors without corrupting the caches.
func TestSessionRejectsInvalidEvents(t *testing.T) {
	sc := traceScenario(t, 4)
	s := session.New(sc.Overlay, session.Options{})
	events := s.Stats().Events
	if err := s.AddInstance(sc.SourceNID, 1, -1); err == nil {
		t.Fatal("duplicate NID accepted")
	}
	if err := s.RemoveInstance(99999); err == nil {
		t.Fatal("removal of unknown instance accepted")
	}
	if err := s.RemoveLink(99998, 99999); err == nil {
		t.Fatal("removal of unknown link accepted")
	}
	if err := s.GrowLinkBandwidth(99998, 99999, 5); err == nil {
		t.Fatal("growth of unknown link accepted")
	}
	if got := s.Stats().Events; got != events {
		t.Fatalf("rejected events were counted: %d != %d", got, events)
	}
	assertTableEqual(t, s, 4, 0)
}
