// Package session implements the incremental federation session behind the
// paper's "agile" claim: a long-lived overlay whose expensive derived state —
// the all-pairs shortest-widest table and the service abstract graphs built
// on it — is maintained under mutation events instead of rebuilt per solve.
//
// Every overlay change (a link re-weighted, added or removed; an instance
// joining or leaving) flows through the session, which translates it into
// exact per-source dirty sets via qos.Incremental's reverse-dependency
// index. A solve after k changed links recomputes only the sources that
// could reach a changed node, not all of them; on single-link churn that is
// typically a small fraction of the overlay (see results/bench-dynamics.txt).
//
// The maintained caches are provably equivalent to from-scratch rebuilds —
// not just metric-equal but byte-identical, selected paths included — which
// the equivalence-oracle tests in this package assert after every event of
// long random mutation traces.
//
// Recomputation runs on qos's dense CSR engine: the session's overlay is
// frozen once per mutated epoch and dirty sources rerun on per-worker
// reusable scratch buffers (see DESIGN.md, "Hot-path engine").
package session

import (
	"fmt"
	"sync/atomic"
	"time"

	"sflow/internal/abstract"
	"sflow/internal/core"
	"sflow/internal/metrics"
	"sflow/internal/overlay"
	"sflow/internal/qos"
	"sflow/internal/require"
)

// Options tunes a session. The zero value is ready to use.
type Options struct {
	// Workers bounds the fan-out of the initial all-pairs computation and
	// of every incremental flush: 0 uses runtime.GOMAXPROCS(0), 1 forces
	// sequential recomputation (results are identical either way).
	Workers int
	// Metrics, when non-nil, receives session counters (events by kind,
	// recomputed vs saved sources) and a volatile flush-latency histogram.
	Metrics *metrics.Registry
	// Lazy maintains the shortest-widest table demand-driven instead of
	// eagerly: no all-pairs computation runs at session start, rows
	// materialize the first time a solve reads them, and churn evicts (never
	// recomputes) exactly the affected rows. Answers are byte-identical to
	// eager mode for every row read. This is the mode for 10k–100k-node
	// overlays, where the full N² table is neither affordable nor needed.
	Lazy bool
	// MaxRows bounds how many lazily computed rows stay memoized in Lazy
	// mode (<= 0 means unbounded): beyond the bound, the least recently read
	// row is dropped and recomputes byte-identically on its next read —
	// capping resident memory under drifting read sets. Ignored when Lazy is
	// false.
	MaxRows int
}

// Stats accumulates what a session did over its lifetime. All fields are
// deterministic for a deterministic event stream.
type Stats struct {
	// Events counts accepted mutation events.
	Events int64
	// Flushes counts incremental recomputation passes.
	Flushes int64
	// RecomputedSources counts per-source shortest-widest runs the flushes
	// performed.
	RecomputedSources int64
	// SavedSources counts the per-source runs a from-scratch rebuild would
	// have performed at each flush but the incremental maintenance skipped.
	SavedSources int64
	// EvictedRows counts the materialized rows churn invalidated in lazy
	// mode (lazy flushes evict instead of recomputing; the other flush
	// counters above stay zero in lazy mode).
	EvictedRows int64
}

// Session owns a private copy of an overlay and keeps its all-pairs
// shortest-widest table incrementally up to date under mutations.
//
// Concurrency contract: a Session is NOT safe for concurrent use. Every
// method except the read-only accessors Overlay and Stats must be called
// from one goroutine at a time — in a long-lived deployment, dedicate one
// writer goroutine to the session and publish immutable Snapshots to
// concurrent readers (the RCU pattern internal/daemon implements). The
// recompute fan-out bounded by Options.Workers is the session's only internal
// parallelism.
//
// Misuse fails loudly instead of corrupting the maintained table: each
// guarded method sets an atomic in-use flag for its duration and panics with
// an explicit message when it finds the flag already set. The detector is
// best-effort (two calls that do not overlap in time interleave undetected —
// run the race detector to catch those), but an overlapping pair that would
// have silently corrupted the all-pairs cache now crashes with a clear
// diagnosis at the exact call site.
type Session struct {
	ov      *overlay.Overlay
	inc     *qos.Incremental
	lazy    bool
	workers int
	reg     *metrics.Registry
	stats   Stats
	epoch   uint64

	// inUse is the concurrent-misuse detector: 0 when idle, 1 while a
	// guarded method runs.
	inUse atomic.Int32

	events  *metrics.Counter
	flushUS *metrics.Histogram
}

// enter flags the session as busy; it panics if another guarded call is
// already running, which can only happen when two goroutines use the session
// concurrently in violation of its contract.
func (s *Session) enter(op string) {
	if !s.inUse.CompareAndSwap(0, 1) {
		panic("session: concurrent " + op + " detected — a Session must be used by one goroutine at a time; " +
			"dedicate a writer goroutine and serve readers from Snapshot (see the Session type documentation)")
	}
}

// exit clears the busy flag set by enter.
func (s *Session) exit() { s.inUse.Store(0) }

// New starts a session over a private clone of ov (later mutations of the
// caller's overlay do not affect the session, and vice versa).
func New(ov *overlay.Overlay, opts Options) *Session {
	own := ov.Clone()
	var inc *qos.Incremental
	if opts.Lazy {
		inc = qos.NewIncrementalLazyOpts(own, opts.Workers,
			qos.LazyOptions{Metrics: opts.Metrics, MaxRows: opts.MaxRows})
	} else {
		inc = qos.NewIncremental(own, opts.Workers, opts.Metrics)
	}
	s := &Session{
		ov:      own,
		inc:     inc,
		lazy:    opts.Lazy,
		workers: opts.Workers,
		reg:     opts.Metrics,
	}
	if opts.Metrics != nil {
		s.events = opts.Metrics.Counter("session_events_total")
		s.flushUS = opts.Metrics.Histogram("session_flush_us",
			metrics.ExponentialBounds(10, 10, 6), metrics.Volatile())
	}
	return s
}

// Overlay returns the session's overlay. Callers must treat it as read-only:
// mutating it directly (instead of through the session's event methods)
// silently invalidates the maintained caches.
func (s *Session) Overlay() *overlay.Overlay { return s.ov }

// Lazy reports whether the session maintains its table demand-driven.
func (s *Session) Lazy() bool { return s.lazy }

// Stats returns what the session has done so far.
func (s *Session) Stats() Stats { return s.stats }

// event records one accepted mutation.
func (s *Session) event() {
	s.stats.Events++
	s.events.Inc()
}

// AddInstance applies an InstanceJoined event: a new service instance with
// no links yet (links follow as AddLink events).
func (s *Session) AddInstance(nid, sid, host int) error {
	s.enter("AddInstance")
	defer s.exit()
	if err := s.ov.AddInstance(nid, sid, host); err != nil {
		return err
	}
	s.inc.NodeAdded(nid)
	s.event()
	return nil
}

// RemoveInstance applies an InstanceLeft event: the instance and every
// incident service link disappear.
func (s *Session) RemoveInstance(nid int) error {
	s.enter("RemoveInstance")
	defer s.exit()
	return s.removeInstance(nid)
}

// removeInstance is RemoveInstance without the misuse guard, for internal
// reuse from already-guarded paths (RepairPartial's removal callback).
func (s *Session) removeInstance(nid int) error {
	// Capture the in-neighbors before the overlay drops them: their
	// out-arc lists are about to shrink.
	ins := append([]qos.Arc(nil), s.ov.In(nid)...)
	if err := s.ov.RemoveInstance(nid); err != nil {
		return err
	}
	for _, a := range ins {
		s.inc.OutChanged(a.To)
	}
	s.inc.NodeRemoved(nid)
	s.event()
	return nil
}

// AddLink applies a LinkAdded event.
func (s *Session) AddLink(from, to int, bandwidth, latency int64) error {
	s.enter("AddLink")
	defer s.exit()
	if err := s.ov.AddLink(from, to, bandwidth, latency); err != nil {
		return err
	}
	s.inc.OutChanged(from)
	s.event()
	return nil
}

// RemoveLink applies a LinkRemoved event.
func (s *Session) RemoveLink(from, to int) error {
	s.enter("RemoveLink")
	defer s.exit()
	if err := s.ov.RemoveLink(from, to); err != nil {
		return err
	}
	s.inc.OutChanged(from)
	s.event()
	return nil
}

// GrowLinkBandwidth applies a LinkBandwidthChanged event that releases
// capacity on from -> to.
func (s *Session) GrowLinkBandwidth(from, to int, delta int64) error {
	s.enter("GrowLinkBandwidth")
	defer s.exit()
	if err := s.ov.GrowLinkBandwidth(from, to, delta); err != nil {
		return err
	}
	s.inc.OutChanged(from)
	s.event()
	return nil
}

// ReduceLinkBandwidth applies a LinkBandwidthChanged event that reserves
// capacity on from -> to; reducing to zero or below removes the link, as in
// the overlay mutator it wraps.
func (s *Session) ReduceLinkBandwidth(from, to int, delta int64) error {
	s.enter("ReduceLinkBandwidth")
	defer s.exit()
	if err := s.ov.ReduceLinkBandwidth(from, to, delta); err != nil {
		return err
	}
	s.inc.OutChanged(from)
	s.event()
	return nil
}

// Flush recomputes every source the pending events dirtied and returns how
// many per-source runs that took. A from-scratch rebuild would have run one
// per instance; the difference is the saving the session exists for.
func (s *Session) Flush() int {
	s.enter("Flush")
	defer s.exit()
	return s.flush()
}

// flush is Flush without the misuse guard, for internal reuse.
func (s *Session) flush() int {
	if len(s.inc.Dirty()) == 0 {
		return 0
	}
	start := time.Now()
	n := s.inc.Flush()
	s.flushUS.Observe(time.Since(start).Microseconds())
	s.stats.Flushes++
	if s.lazy {
		s.stats.EvictedRows += int64(n)
	} else {
		s.stats.RecomputedSources += int64(n)
		s.stats.SavedSources += int64(s.ov.NumInstances() - n)
	}
	return n
}

// Dirty returns the sources a Flush would currently recompute, ascending.
func (s *Session) Dirty() []int {
	s.enter("Dirty")
	defer s.exit()
	return s.inc.Dirty()
}

// AllPairs flushes pending recomputation and returns the maintained
// shortest-widest table in eager form. It equals a from-scratch
// qos.ComputeAllPairs on the current overlay, byte for byte. In lazy mode
// this materializes every row — use Table for demand-driven reads. The
// returned table is the live maintained one in eager mode — later events
// move it; use Snapshot for an immutable view.
func (s *Session) AllPairs() *qos.AllPairs {
	s.enter("AllPairs")
	defer s.exit()
	s.flush()
	return s.inc.AllPairs()
}

// Table flushes pending invalidation and returns the maintained table
// without forcing materialization: in lazy mode rows still compute only when
// read. The returned table is the live maintained one — later events move
// it; use Snapshot for an immutable view.
func (s *Session) Table() qos.Table {
	s.enter("Table")
	defer s.exit()
	s.flush()
	return s.inc.Table()
}

// Abstract flushes pending recomputation and returns the service abstract
// graph of req over the session's overlay, backed by the maintained table
// instead of a rebuild. It fails exactly when abstract.Build would: some
// required service has no instance left.
func (s *Session) Abstract(req *require.Requirement) (*abstract.Graph, error) {
	s.enter("Abstract")
	defer s.exit()
	s.flush()
	ag, err := abstract.FromAllPairs(s.ov, req, s.inc.Table())
	if err != nil {
		return nil, fmt.Errorf("session: %w", err)
	}
	return ag, nil
}

// Snapshot is an immutable, internally consistent view of a session at one
// publication point: the overlay and the all-pairs shortest-widest table
// describe exactly the same state, and neither moves when the session applies
// later events. Snapshots are safe to share between any number of concurrent
// readers — they are the publication half of the reader/writer (RCU) split a
// long-lived serving process builds on the session.
type Snapshot struct {
	// Epoch numbers the publication, strictly increasing per session.
	Epoch uint64
	// Overlay is a private clone; the session's later mutations do not
	// touch it. Readers must still treat it as read-only among themselves.
	Overlay *overlay.Overlay
	// AllPairs answers exactly like qos.ComputeAllPairs(Overlay) for every
	// row read and shares no mutable state with the session's live table. In
	// eager mode it is a *qos.AllPairs; in lazy mode a pinned
	// *qos.LazyAllPairs that computes still-missing rows on demand from the
	// snapshot's own frozen graph (safe for concurrent readers either way).
	AllPairs qos.Table
}

// Snapshot flushes pending recomputation and publishes the current state as
// an immutable Snapshot. The overlay is deep-cloned and the table snapshotted
// (a cheap shallow copy over immutable per-source results), so the cost is
// O(overlay + sources), independent of how much routing state the epoch
// carries.
func (s *Session) Snapshot() *Snapshot {
	s.enter("Snapshot")
	defer s.exit()
	s.flush()
	s.epoch++
	var table qos.Table
	if s.lazy {
		table = s.inc.Lazy().Snapshot()
	} else {
		table = s.inc.AllPairs().Snapshot()
	}
	return &Snapshot{
		Epoch:    s.epoch,
		Overlay:  s.ov.Clone(),
		AllPairs: table,
	}
}

// Abstract builds the service abstract graph of req over the snapshot —
// the read-side counterpart of Session.Abstract, safe to call from any
// number of goroutines concurrently.
func (sn *Snapshot) Abstract(req *require.Requirement) (*abstract.Graph, error) {
	ag, err := abstract.FromAllPairs(sn.Overlay, req, sn.AllPairs)
	if err != nil {
		return nil, fmt.Errorf("session: %w", err)
	}
	return ag, nil
}

// RepairPartial re-federates after a distributed federation over the
// session's overlay gave up with a *core.PartialFederationError. Unlike the
// stateless core.RepairPartial it does not clone the overlay: the
// unresponsive instances leave the session itself (they really are gone, and
// later solves should see that), and every removal flows through the
// session's event methods so the maintained caches stay exact — the re-solve
// after a repair recomputes only the sources the departures dirtied.
func (s *Session) RepairPartial(req *require.Requirement, src int, perr *core.PartialFederationError, opts core.Options) (*core.RepairResult, error) {
	s.enter("RepairPartial")
	defer s.exit()
	return core.RepairPartialOn(s.ov, s.removeInstance, req, src, perr, opts)
}

// Federate runs the distributed sFlow protocol over the session's overlay.
// The protocol computes from scoped local views, not from the session's
// all-pairs caches, but running it through the session keeps one source of
// truth for the overlay a long-lived deployment is operating on.
func (s *Session) Federate(req *require.Requirement, src int, opts core.Options) (*core.Result, error) {
	s.enter("Federate")
	defer s.exit()
	return core.Federate(s.ov, req, src, opts)
}
