package session_test

import (
	"reflect"
	"testing"

	"sflow/internal/qos"
	"sflow/internal/session"
)

// lazyTableOf flushes the session and returns its demand-driven table, which
// the Options.Lazy contract guarantees.
func lazyTableOf(t *testing.T, s *session.Session) *qos.LazyAllPairs {
	t.Helper()
	lt, ok := s.Table().(*qos.LazyAllPairs)
	if !ok {
		t.Fatalf("lazy session serves a %T, want *qos.LazyAllPairs", s.Table())
	}
	return lt
}

// assertRowsMatchScratch deep-compares every currently materialized lazy row
// — reachable set, metrics, selected paths — against a from-scratch eager
// rebuild on the session's current overlay. Rows nobody read are exactly the
// rows allowed to be absent.
func assertRowsMatchScratch(t *testing.T, s *session.Session, lt *qos.LazyAllPairs, seed int64, event int) {
	t.Helper()
	scratch := qos.ComputeAllPairsWorkers(s.Overlay(), 1)
	for _, src := range lt.ComputedRows() {
		got, want := lt.From(src), scratch.From(src)
		if want == nil {
			t.Fatalf("seed %d event %d: materialized row %d has no scratch counterpart", seed, event, src)
		}
		for _, dst := range scratch.Sources() {
			if gm, wm := got.Metric(dst), want.Metric(dst); gm != wm {
				t.Fatalf("seed %d event %d: row %d metric to %d: lazy %v, scratch %v", seed, event, src, dst, gm, wm)
			}
			if gp, wp := got.PathTo(dst), want.PathTo(dst); !reflect.DeepEqual(gp, wp) {
				t.Fatalf("seed %d event %d: row %d path to %d: lazy %v, scratch %v", seed, event, src, dst, gp, wp)
			}
		}
	}
}

// TestLazyEquivalenceOracleTrace replays the equivalence-oracle churn traces
// on a LAZY session: after every event, each row the demand-driven table has
// materialized deep-equals a from-scratch rebuild on the mutated overlay —
// if invalidation ever under-evicts, a stale row survives churn and this
// catches it. Periodically the whole table is materialized and compared both
// ways, and the cache-backed abstract graph checked against a fresh build.
func TestLazyEquivalenceOracleTrace(t *testing.T) {
	seeds, events := 5, 1000
	if testing.Short() {
		seeds, events = 2, 250
	}
	for seed := int64(0); seed < int64(seeds); seed++ {
		sc := traceScenario(t, seed)
		s := session.New(sc.Overlay, session.Options{Workers: int(seed % 3), Lazy: true})
		if !s.Lazy() {
			t.Fatal("Options.Lazy did not produce a lazy session")
		}
		churn := session.NewChurn(s, seed*7+1, []int{sc.SourceNID}, sc.Req.Services())
		// Seed some demand so early events have materialized rows to evict.
		s.Table().From(sc.SourceNID)
		for e := 1; e <= events; e++ {
			if _, err := churn.Step(); err != nil {
				t.Fatalf("seed %d event %d: %v", seed, e, err)
			}
			lt := lazyTableOf(t, s)
			assertRowsMatchScratch(t, s, lt, seed, e)
			if e%25 == 0 {
				want := qos.ComputeAllPairsWorkers(s.Overlay(), 1)
				if !qos.TablesEqual(lt, want) || !qos.TablesEqual(want, lt) {
					t.Fatalf("seed %d event %d: materialized lazy table diverged from scratch", seed, e)
				}
				assertAbstractEqual(t, s, sc.Req, seed, e)
			}
		}
		st := s.Stats()
		if st.Events < int64(events) {
			t.Fatalf("seed %d: %d events recorded, want >= %d", seed, st.Events, events)
		}
		// Lazy flushes evict; they never run routing.
		if st.RecomputedSources != 0 {
			t.Fatalf("seed %d: lazy session recomputed %d sources in flushes, want 0", seed, st.RecomputedSources)
		}
		if st.EvictedRows == 0 {
			t.Fatalf("seed %d: churn trace evicted no rows", seed)
		}
	}
}

// TestLazySnapshotIsConsistentAndImmutable is the lazy half of the snapshot
// publication contract: a lazy session's snapshots answer exactly like a
// from-scratch computation on their own overlay — including rows first read
// long after later churn mutated the live session — and never move.
func TestLazySnapshotIsConsistentAndImmutable(t *testing.T) {
	sc := traceScenario(t, 3)
	s := session.New(sc.Overlay, session.Options{Workers: 1, Lazy: true})

	churn := session.NewChurn(s, 3, []int{sc.SourceNID}, sc.Req.Services())
	var snaps []*session.Snapshot
	for i := 0; i < 30; i++ {
		if _, err := churn.Step(); err != nil {
			t.Fatalf("churn step %d: %v", i, err)
		}
		if i%5 == 4 {
			// Read a row or two before publishing so snapshots carry a mix
			// of pre-materialized and on-demand rows.
			s.Table().From(sc.SourceNID)
			snaps = append(snaps, s.Snapshot())
		}
	}
	for i, sn := range snaps {
		want := qos.ComputeAllPairsWorkers(sn.Overlay, 1)
		if !qos.TablesEqual(sn.AllPairs, want) || !qos.TablesEqual(want, sn.AllPairs) {
			t.Fatalf("lazy snapshot %d does not match its own overlay after churn", i)
		}
	}
	for i := 1; i < len(snaps); i++ {
		if snaps[i].Epoch <= snaps[i-1].Epoch {
			t.Fatalf("epochs not strictly increasing: %d then %d", snaps[i-1].Epoch, snaps[i].Epoch)
		}
	}
}
