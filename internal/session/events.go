package session

import (
	"fmt"
	"math/rand"
)

// EventKind enumerates the mutation events of the dynamics model: the churn a
// long-lived overlay sees between solves.
type EventKind int

const (
	// EventGrowBandwidth releases capacity on an existing link.
	EventGrowBandwidth EventKind = iota
	// EventReduceBandwidth reserves capacity on an existing link; reducing
	// to zero removes the link, as in provisioning.
	EventReduceBandwidth
	// EventAddLink connects two previously unlinked instances.
	EventAddLink
	// EventRemoveLink fails an existing link outright.
	EventRemoveLink
	// EventInstanceJoin adds a fresh instance of an existing service with a
	// few random links.
	EventInstanceJoin
	// EventInstanceLeave removes an instance and its incident links.
	EventInstanceLeave

	numEventKinds
)

// String names the event kind for logs and test failures.
func (k EventKind) String() string {
	switch k {
	case EventGrowBandwidth:
		return "grow-bandwidth"
	case EventReduceBandwidth:
		return "reduce-bandwidth"
	case EventAddLink:
		return "add-link"
	case EventRemoveLink:
		return "remove-link"
	case EventInstanceJoin:
		return "instance-join"
	case EventInstanceLeave:
		return "instance-leave"
	default:
		return fmt.Sprintf("event-kind-%d", int(k))
	}
}

// Event records one applied mutation: the kind, the link endpoints (From/To,
// for link events), the instance (NID, for join/leave) and the bandwidth
// delta (for grow/reduce).
type Event struct {
	Kind     EventKind
	From, To int
	NID      int
	Delta    int64
}

// Churn draws a seeded, deterministic stream of mutation events and applies
// them to a session: the event model behind the dynamics experiment and the
// equivalence-oracle tests. Every decision comes from the stream's own rng
// and the session's (deterministically ordered) overlay accessors, so a
// (seed, initial overlay) pair always produces the same trace.
//
// The generator never removes a protected instance (the consumer's source),
// never removes the last instance of a required service, and stops shrinking
// the overlay below half its initial size — the churn stresses cache
// maintenance, not requirement feasibility, although link removals may still
// make individual solves fail (both the cached and the stateless path then
// fail identically).
type Churn struct {
	s        *Session
	rng      *rand.Rand
	protect  map[int]bool
	required map[int]bool
	next     int // next fresh NID for joins
	minSize  int // never shrink below this many instances
}

// NewChurn starts a seeded event stream against s. protectNIDs are instances
// that must never leave (typically the requirement's source instance);
// requiredSIDs are services that must keep at least one instance (typically
// req.Services()).
func NewChurn(s *Session, seed int64, protectNIDs, requiredSIDs []int) *Churn {
	c := &Churn{
		s:        s,
		rng:      rand.New(rand.NewSource(seed)),
		protect:  make(map[int]bool, len(protectNIDs)),
		required: make(map[int]bool, len(requiredSIDs)),
		minSize:  s.Overlay().NumInstances()/2 + 1,
	}
	for _, nid := range protectNIDs {
		c.protect[nid] = true
	}
	for _, sid := range requiredSIDs {
		c.required[sid] = true
	}
	for _, nid := range s.Overlay().Nodes() {
		if nid >= c.next {
			c.next = nid + 1
		}
	}
	return c
}

// Step applies one random mutation to the session and returns it. When the
// drawn kind is not applicable in the current overlay (no links to remove, no
// removable instance, ...) the remaining kinds are tried in a fixed rotation,
// so Step fails only on an overlay that admits no mutation at all.
func (c *Churn) Step() (Event, error) {
	first := EventKind(c.rng.Intn(int(numEventKinds)))
	for i := 0; i < int(numEventKinds); i++ {
		kind := EventKind((int(first) + i) % int(numEventKinds))
		ev, ok, err := c.try(kind)
		if err != nil {
			return Event{}, fmt.Errorf("session: churn %v: %w", kind, err)
		}
		if ok {
			return ev, nil
		}
	}
	return Event{}, fmt.Errorf("session: no applicable mutation (%d instances, %d links)",
		c.s.Overlay().NumInstances(), c.s.Overlay().NumLinks())
}

// try attempts one mutation of the given kind; ok reports whether the kind
// was applicable.
func (c *Churn) try(kind EventKind) (Event, bool, error) {
	ov := c.s.Overlay()
	switch kind {
	case EventGrowBandwidth:
		links := ov.Links()
		if len(links) == 0 {
			return Event{}, false, nil
		}
		l := links[c.rng.Intn(len(links))]
		delta := 1 + c.rng.Int63n(512)
		if err := c.s.GrowLinkBandwidth(l.From, l.To, delta); err != nil {
			return Event{}, false, err
		}
		return Event{Kind: kind, From: l.From, To: l.To, Delta: delta}, true, nil

	case EventReduceBandwidth:
		links := ov.Links()
		if len(links) == 0 {
			return Event{}, false, nil
		}
		l := links[c.rng.Intn(len(links))]
		// Up to the full bandwidth: a saturating reservation removes the
		// link, exercising the removal path of the cache maintenance.
		delta := 1 + c.rng.Int63n(l.Bandwidth)
		if err := c.s.ReduceLinkBandwidth(l.From, l.To, delta); err != nil {
			return Event{}, false, err
		}
		return Event{Kind: kind, From: l.From, To: l.To, Delta: delta}, true, nil

	case EventAddLink:
		nodes := ov.Nodes()
		if len(nodes) < 2 {
			return Event{}, false, nil
		}
		for attempt := 0; attempt < 8; attempt++ {
			from := nodes[c.rng.Intn(len(nodes))]
			to := nodes[c.rng.Intn(len(nodes))]
			if from == to || ov.HasLink(from, to) {
				continue
			}
			bw, lat := 1+c.rng.Int63n(1024), c.rng.Int63n(5000)
			if err := c.s.AddLink(from, to, bw, lat); err != nil {
				return Event{}, false, err
			}
			return Event{Kind: kind, From: from, To: to, Delta: bw}, true, nil
		}
		return Event{}, false, nil

	case EventRemoveLink:
		links := ov.Links()
		if len(links) == 0 {
			return Event{}, false, nil
		}
		l := links[c.rng.Intn(len(links))]
		if err := c.s.RemoveLink(l.From, l.To); err != nil {
			return Event{}, false, err
		}
		return Event{Kind: kind, From: l.From, To: l.To}, true, nil

	case EventInstanceJoin:
		sids := ov.SIDs()
		if len(sids) == 0 {
			return Event{}, false, nil
		}
		nid := c.next
		c.next++
		sid := sids[c.rng.Intn(len(sids))]
		if err := c.s.AddInstance(nid, sid, -1); err != nil {
			return Event{}, false, err
		}
		// A couple of random in- and out-links so the newcomer is not
		// isolated; duplicates and self-links are skipped, so the joiner
		// may still end up with fewer (or zero) links.
		nodes := ov.Nodes()
		for i := 0; i < 2; i++ {
			peer := nodes[c.rng.Intn(len(nodes))]
			if peer != nid && !ov.HasLink(nid, peer) {
				if err := c.s.AddLink(nid, peer, 1+c.rng.Int63n(1024), c.rng.Int63n(5000)); err != nil {
					return Event{}, false, err
				}
			}
			peer = nodes[c.rng.Intn(len(nodes))]
			if peer != nid && !ov.HasLink(peer, nid) {
				if err := c.s.AddLink(peer, nid, 1+c.rng.Int63n(1024), c.rng.Int63n(5000)); err != nil {
					return Event{}, false, err
				}
			}
		}
		return Event{Kind: kind, NID: nid}, true, nil

	case EventInstanceLeave:
		if ov.NumInstances() <= c.minSize {
			return Event{}, false, nil
		}
		var candidates []int
		for _, nid := range ov.Nodes() {
			if c.protect[nid] {
				continue
			}
			sid := ov.SIDOf(nid)
			if c.required[sid] && len(ov.InstancesOf(sid)) <= 1 {
				continue
			}
			candidates = append(candidates, nid)
		}
		if len(candidates) == 0 {
			return Event{}, false, nil
		}
		nid := candidates[c.rng.Intn(len(candidates))]
		if err := c.s.RemoveInstance(nid); err != nil {
			return Event{}, false, err
		}
		return Event{Kind: kind, NID: nid}, true, nil
	}
	return Event{}, false, fmt.Errorf("unknown event kind %d", int(kind))
}
