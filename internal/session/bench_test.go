package session_test

import (
	"fmt"
	"testing"

	"sflow/internal/qos"
	"sflow/internal/scenario"
	"sflow/internal/session"
)

// BenchmarkSessionIncrementalVsRebuild measures the session's reason to
// exist: after a single link change, the incremental flush recomputes only
// the sources that could reach the changed node, while the stateless path
// recomputes all of them. Both legs produce byte-identical tables (the
// equivalence-oracle tests assert that); this benchmark prices the
// difference. results/bench-dynamics.txt holds a committed capture.
func BenchmarkSessionIncrementalVsRebuild(b *testing.B) {
	for _, size := range []int{30, 60, 120} {
		// The overlay has ~1 + (Services-1)*InstancesPerService instances;
		// scale the instance count so the table really grows with size.
		sc, err := scenario.Generate(scenario.Config{
			Seed: 1, NetworkSize: size, Services: 6, InstancesPerService: size / 5,
		})
		if err != nil {
			b.Fatal(err)
		}
		links := sc.Overlay.Links()
		l := links[len(links)/2]

		b.Run(fmt.Sprintf("n=%d/incremental", size), func(b *testing.B) {
			s := session.New(sc.Overlay, session.Options{Workers: 1})
			s.Flush()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				// Grow and shrink the same link so the overlay state is
				// steady across iterations; each toggle dirties only the
				// sources that route through the link's tail.
				if err := s.GrowLinkBandwidth(l.From, l.To, 1); err != nil {
					b.Fatal(err)
				}
				if err := s.ReduceLinkBandwidth(l.From, l.To, 1); err != nil {
					b.Fatal(err)
				}
				if n := s.Flush(); n == 0 {
					b.Fatal("nothing recomputed")
				}
			}
			st := s.Stats()
			b.ReportMetric(float64(st.RecomputedSources)/float64(st.Flushes), "sources/flush")
		})

		b.Run(fmt.Sprintf("n=%d/rebuild", size), func(b *testing.B) {
			ov := sc.Overlay.Clone()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := ov.GrowLinkBandwidth(l.From, l.To, 1); err != nil {
					b.Fatal(err)
				}
				if err := ov.ReduceLinkBandwidth(l.From, l.To, 1); err != nil {
					b.Fatal(err)
				}
				ap := qos.ComputeAllPairsWorkers(ov, 1)
				if len(ap.Sources()) == 0 {
					b.Fatal("empty table")
				}
			}
			b.ReportMetric(float64(sc.Overlay.NumInstances()), "sources/flush")
		})
	}
}
