package session_test

import (
	"strings"
	"testing"

	"sflow/internal/core"
	"sflow/internal/qos"
	"sflow/internal/session"
)

// TestMisuseDetectorPanics pins the concurrency contract: a guarded method
// entered while another guarded call is still running must panic with a
// message that names the overlapping operation and points at the fix, rather
// than silently corrupting the maintained table. The test holds the in-use
// flag directly (via the test-only Enter hook), which is exactly the state a
// second goroutine would observe mid-call.
func TestMisuseDetectorPanics(t *testing.T) {
	sc := traceScenario(t, 1)
	s := session.New(sc.Overlay, session.Options{Workers: 1})

	s.Enter("test-held")
	defer s.Exit()

	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("guarded method ran while the session was in use; want panic")
		}
		msg, ok := r.(string)
		if !ok {
			t.Fatalf("panic value %T, want string", r)
		}
		if !strings.Contains(msg, "concurrent Flush") || !strings.Contains(msg, "Snapshot") {
			t.Fatalf("panic message %q does not diagnose the misuse", msg)
		}
	}()
	s.Flush()
}

// TestRepairPartialRemovalsDoNotTripDetector guards against the detector
// tripping on the session's own nested calls: RepairPartial removes
// unresponsive instances through an internal path while the guard is held,
// and that must not be mistaken for concurrent misuse.
func TestRepairPartialRemovalsDoNotTripDetector(t *testing.T) {
	sc := traceScenario(t, 2)
	s := session.New(sc.Overlay, session.Options{Workers: 1})

	// Pick a non-source instance to declare unresponsive; a nil flow with
	// one unresponsive node exercises the removal callback.
	victim := -1
	for _, sid := range sc.Req.Services() {
		if sid == sc.Req.Source() {
			continue
		}
		if insts := s.Overlay().InstancesOf(sid); len(insts) > 1 {
			victim = insts[0]
			break
		}
	}
	if victim < 0 {
		t.Skip("scenario has no non-source service with a spare instance")
	}
	before := s.Overlay().NumInstances()
	perr := &core.PartialFederationError{Unresponsive: []int{victim}}
	if _, err := s.RepairPartial(sc.Req, sc.SourceNID, perr, core.Options{}); err != nil {
		// Repair may legitimately fail (no feasible re-federation); the
		// point is that the removal happened without a guard panic.
		t.Logf("repair returned error (acceptable): %v", err)
	}
	if got := s.Overlay().NumInstances(); got != before-1 {
		t.Fatalf("unresponsive instance not removed: %d instances, want %d", got, before-1)
	}
	// The session must be usable again after the guarded call returned.
	s.Flush()
	if got, want := s.AllPairs(), qos.ComputeAllPairsWorkers(s.Overlay(), 1); !got.Equal(want) {
		t.Fatal("maintained table diverged after repair removals")
	}
}
