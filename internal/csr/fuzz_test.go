package csr_test

import (
	"reflect"
	"testing"

	"sflow/internal/csr"
	"sflow/internal/overlay"
	"sflow/internal/qos"
)

// FuzzFreezeRoundTrip decodes the fuzz input into an overlay with arbitrary
// NID gaps, isolated instances and arbitrary link weights, freezes it, thaws
// the frozen form back into adjacency lists and requires an exact match with
// the overlay's own Nodes/Out view — the frozen CSR must be a faithful,
// lossless representation of what it froze.
func FuzzFreezeRoundTrip(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{3, 0, 5, 200, 1, 0, 1, 2, 9})
	f.Add([]byte{8, 1, 1, 1, 1, 1, 1, 1, 1, 0, 1, 10, 3, 1, 7, 4, 2, 3, 0, 2, 250})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) == 0 {
			return
		}
		next := func() byte {
			if len(data) == 0 {
				return 0
			}
			b := data[0]
			data = data[1:]
			return b
		}

		// Nodes: up to 16 instances at NIDs with fuzz-chosen gaps.
		ov := overlay.New()
		n := int(next()%16) + 1
		nids := make([]int, 0, n)
		nid := 0
		for i := 0; i < n; i++ {
			nid += int(next()%50) + 1 // strictly increasing => unique, gappy
			nids = append(nids, nid)
			if err := ov.AddInstance(nid, int(next()%4), -1); err != nil {
				t.Fatal(err)
			}
		}
		// Links: triples of (from, to, weight); invalid ones are skipped the
		// same way the overlay itself rejects them.
		for len(data) >= 3 {
			from := nids[int(next())%len(nids)]
			to := nids[int(next())%len(nids)]
			w := next()
			if from == to || ov.HasLink(from, to) {
				continue
			}
			if err := ov.AddLink(from, to, int64(w%100)+1, int64(w)); err != nil {
				t.Fatal(err)
			}
		}

		frozen := qos.FreezeGraph(ov)
		gotNodes, gotOut := frozen.Thaw()

		if want := ov.Nodes(); !reflect.DeepEqual(gotNodes, want) {
			t.Fatalf("thawed nodes = %v, want %v", gotNodes, want)
		}
		wantOut := make(map[int][]csr.Arc)
		for _, u := range ov.Nodes() {
			arcs := ov.Out(u)
			if len(arcs) == 0 {
				continue
			}
			row := make([]csr.Arc, 0, len(arcs))
			for _, a := range arcs {
				row = append(row, csr.Arc{To: a.To, Bandwidth: a.Bandwidth, Latency: a.Latency})
			}
			wantOut[u] = row
		}
		if !reflect.DeepEqual(gotOut, wantOut) {
			t.Fatalf("thawed out = %v, want %v", gotOut, wantOut)
		}

		// And the frozen graph must route identically to its source: the
		// dense kernel on the snapshot vs the map oracle on the overlay.
		for _, src := range ov.Nodes() {
			want := qos.ShortestWidest(ov, src)
			got := qos.ShortestWidestCSR(frozen, src, nil)
			if !reflect.DeepEqual(got.Dist, want.Dist) {
				t.Fatalf("src %d: Dist diverged: %v vs %v", src, got.Dist, want.Dist)
			}
			for dst := range want.Dist {
				if !reflect.DeepEqual(got.PathTo(dst), want.PathTo(dst)) {
					t.Fatalf("src %d dst %d: path diverged: %v vs %v",
						src, dst, got.PathTo(dst), want.PathTo(dst))
				}
			}
		}
	})
}
