// Package csr freezes a weighted digraph into compressed-sparse-row form:
// one contiguous offset array indexing contiguous target/bandwidth/latency
// arrays, plus a dense index <-> external-node-id mapping. The frozen form is
// immutable and cache-friendly — edge iteration is a linear scan of three
// parallel arrays instead of a walk over per-node hash maps — and is the
// substrate the dense Dijkstra kernels in internal/qos run on.
//
// The package deliberately knows nothing about the rest of the module (in
// particular it does not import internal/qos, which imports it): Freeze takes
// the node list and an arc-emitter callback, and the owning packages adapt
// their graph types to it.
package csr

import (
	"fmt"
	"math"
	"sort"
	"sync/atomic"
)

// Arc is one out-edge in thawed (adjacency-list) form.
type Arc struct {
	To        int
	Bandwidth int64 // Kbit/s
	Latency   int64 // microseconds
}

// Graph is a weighted digraph frozen into compressed-sparse-row form. The
// exported arrays are the representation itself — hot loops index them
// directly — and must be treated as read-only: the whole point of freezing is
// that kernels may assume the topology cannot drift under them.
//
// Node i's out-arcs occupy positions Off[i] .. Off[i+1] of the parallel
// To/BW/Lat arrays; To holds dense indexes (not external ids). IDs maps a
// dense index back to the external node identifier it froze.
type Graph struct {
	IDs []int   // dense index -> external node id, in Freeze node order
	Off []int32 // len(IDs)+1 row offsets into To/BW/Lat
	To  []int32 // arc targets as dense indexes
	BW  []int64 // arc bandwidths (Kbit/s); <= 0 means unusable, kept verbatim
	Lat []int64 // arc latencies (microseconds)

	// MinLat and MaxLat bound the latencies of the usable arcs (BW > 0),
	// computed once at freeze time. Kernel implementations use them to pick a
	// queue discipline — a bounded non-negative integer range admits a
	// monotone bucket queue. Both are zero when no usable arc exists.
	MinLat int64
	MaxLat int64

	// Gen is a process-unique freeze generation, bumped on every (re-)freeze.
	// FreezeInto reuses Graph values in place, so callers caching data derived
	// from a frozen graph key their caches on (pointer, Gen), not the pointer
	// alone. Never consulted by any computation — purely a cache-validity tag.
	Gen uint64

	idx map[int]int32 // external node id -> dense index
}

// freezeGen numbers freezes process-wide (see Graph.Gen).
var freezeGen atomic.Uint64

// Freeze builds the CSR form of a digraph. nodes lists the external node
// identifiers in the order that becomes the dense index order; arcs must call
// emit once per out-arc of u, in the graph's deterministic out-arc order.
// Arcs are frozen verbatim (dead bandwidths, duplicates and self-loops
// included) so the frozen graph is a faithful representation of its source.
//
// An arc target that does not appear in nodes is added as an implicit node
// with an empty out-row, indexed after every declared node in first-seen
// order. Sources whose Out is non-empty for undeclared nodes therefore
// freeze those arcs as dead ends; every graph in this module declares all
// its nodes.
func Freeze(nodes []int, arcs func(u int, emit func(to int, bw, lat int64))) *Graph {
	return FreezeInto(nil, nodes, arcs)
}

// FreezeInto is Freeze reusing the arrays of a previously frozen graph
// (which must no longer be in use) so steady-state re-freezes of a mutating
// graph allocate nothing once capacities have grown to fit. A nil g
// allocates fresh, exactly like Freeze.
func FreezeInto(g *Graph, nodes []int, arcs func(u int, emit func(to int, bw, lat int64))) *Graph {
	if g == nil {
		g = &Graph{}
	}
	if len(nodes) > math.MaxInt32 {
		panic(fmt.Sprintf("csr: %d nodes overflow int32 indexing", len(nodes)))
	}
	g.IDs = append(g.IDs[:0], nodes...)
	if g.idx == nil {
		g.idx = make(map[int]int32, len(nodes))
	} else {
		clear(g.idx)
	}
	for i, id := range nodes {
		if _, dup := g.idx[id]; dup {
			panic(fmt.Sprintf("csr: duplicate node id %d", id))
		}
		g.idx[id] = int32(i)
	}
	g.Off = append(g.Off[:0], 0)
	g.To = g.To[:0]
	g.BW = g.BW[:0]
	g.Lat = g.Lat[:0]
	g.MinLat = math.MaxInt64
	g.MaxLat = math.MinInt64
	emit := func(to int, bw, lat int64) {
		j, ok := g.idx[to]
		if !ok {
			if len(g.IDs) >= math.MaxInt32 {
				panic("csr: implicit nodes overflow int32 indexing")
			}
			j = int32(len(g.IDs))
			g.idx[to] = j
			g.IDs = append(g.IDs, to)
		}
		if len(g.To) >= math.MaxInt32 {
			panic("csr: arc count overflows int32 indexing")
		}
		g.To = append(g.To, j)
		g.BW = append(g.BW, bw)
		g.Lat = append(g.Lat, lat)
		if bw > 0 {
			if lat < g.MinLat {
				g.MinLat = lat
			}
			if lat > g.MaxLat {
				g.MaxLat = lat
			}
		}
	}
	for _, u := range nodes {
		arcs(u, emit)
		g.Off = append(g.Off, int32(len(g.To)))
	}
	// Implicit nodes discovered during the fill get empty out-rows.
	for len(g.Off) < len(g.IDs)+1 {
		g.Off = append(g.Off, int32(len(g.To)))
	}
	if g.MinLat > g.MaxLat { // no usable arc
		g.MinLat, g.MaxLat = 0, 0
	}
	g.Gen = freezeGen.Add(1)
	return g
}

// Len returns the number of nodes (declared plus implicit).
func (g *Graph) Len() int { return len(g.IDs) }

// NumArcs returns the number of frozen arcs.
func (g *Graph) NumArcs() int { return len(g.To) }

// ID returns the external node id of dense index i.
func (g *Graph) ID(i int32) int { return g.IDs[i] }

// Index returns the dense index of external node id, and whether it exists.
func (g *Graph) Index(id int) (int32, bool) {
	i, ok := g.idx[id]
	return i, ok
}

// Nodes returns the external node ids, sorted ascending (a fresh slice).
func (g *Graph) Nodes() []int {
	out := append([]int(nil), g.IDs...)
	sort.Ints(out)
	return out
}

// Thaw expands the frozen graph back into adjacency-list form: every node
// (declared and implicit) with its out-arcs in frozen order, targets as
// external ids. Nodes with no out-arcs are present in nodes but absent from
// out. Freeze followed by Thaw reproduces the source graph exactly.
func (g *Graph) Thaw() (nodes []int, out map[int][]Arc) {
	nodes = append([]int(nil), g.IDs...)
	out = make(map[int][]Arc, len(g.IDs))
	for i := range g.IDs {
		lo, hi := g.Off[i], g.Off[i+1]
		if lo == hi {
			continue
		}
		row := make([]Arc, 0, hi-lo)
		for e := lo; e < hi; e++ {
			row = append(row, Arc{To: g.IDs[g.To[e]], Bandwidth: g.BW[e], Latency: g.Lat[e]})
		}
		out[g.IDs[i]] = row
	}
	return nodes, out
}
