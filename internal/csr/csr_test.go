package csr_test

import (
	"reflect"
	"testing"

	"sflow/internal/csr"
)

// adj is a minimal adjacency-list graph for driving Freeze directly.
type adj struct {
	nodes []int
	out   map[int][]csr.Arc
}

func (g adj) freeze(into *csr.Graph) *csr.Graph {
	return csr.FreezeInto(into, g.nodes, func(u int, emit func(to int, bw, lat int64)) {
		for _, a := range g.out[u] {
			emit(a.To, a.Bandwidth, a.Latency)
		}
	})
}

func TestFreezeLayout(t *testing.T) {
	g := adj{
		nodes: []int{7, 3, 50},
		out: map[int][]csr.Arc{
			7:  {{To: 3, Bandwidth: 10, Latency: 1}, {To: 50, Bandwidth: 20, Latency: 2}},
			50: {{To: 7, Bandwidth: 5, Latency: 9}},
		},
	}
	cg := g.freeze(nil)
	if cg.Len() != 3 || cg.NumArcs() != 3 {
		t.Fatalf("Len=%d NumArcs=%d, want 3 and 3", cg.Len(), cg.NumArcs())
	}
	// Index order follows the declared node order, not sorted order.
	if !reflect.DeepEqual(cg.IDs, []int{7, 3, 50}) {
		t.Fatalf("IDs = %v", cg.IDs)
	}
	if !reflect.DeepEqual(cg.Off, []int32{0, 2, 2, 3}) {
		t.Fatalf("Off = %v", cg.Off)
	}
	if !reflect.DeepEqual(cg.To, []int32{1, 2, 0}) {
		t.Fatalf("To = %v", cg.To)
	}
	if !reflect.DeepEqual(cg.BW, []int64{10, 20, 5}) || !reflect.DeepEqual(cg.Lat, []int64{1, 2, 9}) {
		t.Fatalf("BW/Lat = %v / %v", cg.BW, cg.Lat)
	}
	if got := cg.Nodes(); !reflect.DeepEqual(got, []int{3, 7, 50}) {
		t.Fatalf("Nodes = %v", got)
	}
	for i, id := range cg.IDs {
		if got := cg.ID(int32(i)); got != id {
			t.Fatalf("ID(%d) = %d, want %d", i, got, id)
		}
		if idx, ok := cg.Index(id); !ok || idx != int32(i) {
			t.Fatalf("Index(%d) = %d,%v", id, idx, ok)
		}
	}
	if _, ok := cg.Index(999); ok {
		t.Fatal("Index(999) should not exist")
	}
}

func TestFreezeKeepsDeadAndDuplicateArcs(t *testing.T) {
	g := adj{
		nodes: []int{1, 2},
		out: map[int][]csr.Arc{
			1: {
				{To: 2, Bandwidth: 0, Latency: 1},  // dead: zero bandwidth
				{To: 2, Bandwidth: -4, Latency: 2}, // dead: negative
				{To: 2, Bandwidth: 8, Latency: 3},  // duplicate pair, live
				{To: 1, Bandwidth: 5, Latency: 0},  // self-loop
			},
		},
	}
	cg := g.freeze(nil)
	if cg.NumArcs() != 4 {
		t.Fatalf("NumArcs = %d, want all 4 kept verbatim", cg.NumArcs())
	}
	_, out := cg.Thaw()
	if !reflect.DeepEqual(out[1], g.out[1]) {
		t.Fatalf("thawed row = %v, want %v", out[1], g.out[1])
	}
}

func TestFreezeImplicitTarget(t *testing.T) {
	g := adj{
		nodes: []int{1},
		out:   map[int][]csr.Arc{1: {{To: 42, Bandwidth: 3, Latency: 1}}},
	}
	cg := g.freeze(nil)
	if cg.Len() != 2 {
		t.Fatalf("Len = %d, want implicit node appended", cg.Len())
	}
	idx, ok := cg.Index(42)
	if !ok || idx != 1 {
		t.Fatalf("Index(42) = %d,%v, want 1,true", idx, ok)
	}
	// The implicit node's out-row is empty.
	if cg.Off[1] != cg.Off[2] {
		t.Fatalf("implicit row not empty: Off = %v", cg.Off)
	}
}

func TestThawRoundTripWithGapsAndIsolates(t *testing.T) {
	g := adj{
		nodes: []int{100, 5, 62, 9}, // gappy ids, 9 isolated
		out: map[int][]csr.Arc{
			100: {{To: 5, Bandwidth: 1, Latency: 1}},
			5:   {{To: 62, Bandwidth: 2, Latency: 2}, {To: 100, Bandwidth: 3, Latency: 3}},
			62:  {{To: 100, Bandwidth: 4, Latency: 4}},
		},
	}
	nodes, out := g.freeze(nil).Thaw()
	if !reflect.DeepEqual(nodes, g.nodes) {
		t.Fatalf("thawed nodes = %v, want %v", nodes, g.nodes)
	}
	if !reflect.DeepEqual(out, g.out) {
		t.Fatalf("thawed out = %v, want %v", out, g.out)
	}
}

func TestFreezeIntoReusesStorage(t *testing.T) {
	big := adj{nodes: make([]int, 64), out: map[int][]csr.Arc{}}
	for i := range big.nodes {
		big.nodes[i] = i
		big.out[i] = []csr.Arc{{To: (i + 1) % 64, Bandwidth: 1, Latency: 1}}
	}
	cg := big.freeze(nil)
	toCap, offCap := cap(cg.To), cap(cg.Off)

	small := adj{
		nodes: []int{2, 4},
		out:   map[int][]csr.Arc{2: {{To: 4, Bandwidth: 7, Latency: 7}}},
	}
	cg2 := small.freeze(cg)
	if cg2 != cg {
		t.Fatal("FreezeInto must return the same Graph value")
	}
	if cap(cg2.To) != toCap || cap(cg2.Off) != offCap {
		t.Fatalf("capacities not reused: To %d->%d, Off %d->%d", toCap, cap(cg2.To), offCap, cap(cg2.Off))
	}
	nodes, out := cg2.Thaw()
	if !reflect.DeepEqual(nodes, small.nodes) || !reflect.DeepEqual(out, small.out) {
		t.Fatalf("reuse corrupted content: %v %v", nodes, out)
	}
}

func TestFreezeDuplicateNodePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate node id must panic")
		}
	}()
	csr.Freeze([]int{1, 1}, func(int, func(int, int64, int64)) {})
}
