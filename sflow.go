// Package sflow is a library for resource-efficient service federation in
// service overlay networks, reproducing "sFlow: Towards Resource-Efficient
// and Agile Service Federation in Service Overlay Networks" (Wang, Li, Li —
// ICDCS 2004).
//
// A service overlay network hosts service instances (transcoding, lookup,
// storage, ...) on overlay nodes connected by weighted service links. A
// consumer submits a service requirement — a DAG of services with one source
// and at least one sink — and the library federates concrete instances into
// a service flow graph that realises the requirement with high bottleneck
// bandwidth and low end-to-end latency.
//
// The primary entry point is Federate, the paper's fully distributed sFlow
// algorithm: every node computes with only a two-hop local view and
// coordinates through sfederate messages. The centralised algorithms the
// paper builds on or compares against — the polynomial baseline for path
// requirements, the reduction heuristic for general DAGs, the exhaustive
// optimal, the fixed / random / servicepath controls and the hierarchical
// cluster federation — run through the unified Solve entry point (see
// Algorithms for the names); the historical per-algorithm functions remain
// as deprecated wrappers.
//
// Passing a NewMetrics registry through Options.Metrics,
// SolveOptions.Metrics or ExperimentConfig.Metrics collects counters,
// gauges and histograms from every layer (protocol messages and bytes,
// routing relaxations, abstract-graph builds, admission control); read it
// back with Snapshot.
//
// Basic use:
//
//	sc, _ := sflow.GenerateScenario(sflow.ScenarioConfig{
//		Seed: 42, NetworkSize: 30, Services: 6,
//	})
//	res, err := sflow.Federate(sc.Overlay, sc.Req, sc.SourceNID, sflow.Options{})
//	if err != nil { ... }
//	fmt.Println(res.Flow, res.Metric)
package sflow

import (
	"math/rand"

	"sflow/internal/augment"
	"sflow/internal/choice"
	"sflow/internal/cluster"
	"sflow/internal/core"
	"sflow/internal/dot"
	"sflow/internal/experiments"
	"sflow/internal/flow"
	"sflow/internal/npc"
	"sflow/internal/overlay"
	"sflow/internal/plot"
	"sflow/internal/provision"
	"sflow/internal/qos"
	"sflow/internal/require"
	"sflow/internal/sat"
	"sflow/internal/scenario"
	"sflow/internal/service"
	"sflow/internal/topology"
	"sflow/internal/trace"
	"sflow/internal/transport"
	"sflow/internal/workload"
)

// Core model types.
type (
	// Overlay is a service overlay network: service instances connected
	// by directed, weighted service links.
	Overlay = overlay.Overlay
	// Instance is one service instance (a node of the overlay).
	Instance = overlay.Instance
	// Link is one directed service link.
	Link = overlay.Link
	// Compatibility is the directed "output of a feeds b" relation
	// between services.
	Compatibility = overlay.Compatibility
	// Placement assigns a service instance to an underlay host when
	// deriving an overlay from a physical network.
	Placement = overlay.Placement
	// Network is an underlying (physical) network.
	Network = topology.Network
	// NetworkConfig controls random underlay generation.
	NetworkConfig = topology.Config
	// Requirement is a service requirement DAG.
	Requirement = require.Requirement
	// Shape classifies a requirement's topology.
	Shape = require.Shape
	// FlowGraph is a (partial or complete) service flow graph.
	FlowGraph = flow.Graph
	// FlowEdge is one realised service stream of a flow graph.
	FlowEdge = flow.Edge
	// Metric is a path or flow-graph quality: bottleneck bandwidth
	// (Kbit/s) and latency (microseconds), ordered widest-then-shortest.
	Metric = qos.Metric
	// Options tunes the distributed sFlow algorithm.
	Options = core.Options
	// Result is the outcome of a distributed federation.
	Result = core.Result
	// Stats describes one distributed federation run.
	Stats = core.Stats
	// Scenario is a complete reproducible workload (underlay, overlay,
	// requirement, source instance).
	Scenario = scenario.Scenario
	// ScenarioConfig controls scenario generation.
	ScenarioConfig = scenario.Config
	// LargeScenarioConfig controls direct large-overlay generation (10k–100k
	// nodes, no underlay).
	LargeScenarioConfig = scenario.LargeConfig
	// ScenarioKind selects the requirement shape of a generated scenario.
	ScenarioKind = scenario.Kind
	// ExperimentConfig controls an evaluation sweep.
	ExperimentConfig = experiments.Config
	// Series is the data behind one reproduced figure panel.
	Series = experiments.Series
)

// Requirement shapes.
const (
	ShapePath          = require.ShapePath
	ShapeTree          = require.ShapeTree
	ShapeDisjointPaths = require.ShapeDisjointPaths
	ShapeGeneral       = require.ShapeGeneral
)

// Scenario kinds.
const (
	KindPath       = scenario.KindPath
	KindDisjoint   = scenario.KindDisjoint
	KindSplitMerge = scenario.KindSplitMerge
	KindGeneral    = scenario.KindGeneral
	KindTree       = scenario.KindTree
)

// NewOverlay returns an empty service overlay.
func NewOverlay() *Overlay { return overlay.New() }

// NewCompatibility returns an empty service compatibility relation.
func NewCompatibility() *Compatibility { return overlay.NewCompatibility() }

// NewRequirement returns an empty service requirement; populate it with
// AddService / AddDependency and call Validate.
func NewRequirement() *Requirement { return require.New() }

// PathRequirement builds and validates a single-chain requirement.
func PathRequirement(sids ...int) (*Requirement, error) { return require.NewPath(sids...) }

// RequirementFromEdges builds and validates a requirement from dependency
// edges.
func RequirementFromEdges(edges [][2]int) (*Requirement, error) { return require.FromEdges(edges) }

// NewNetwork returns an empty underlying network over n nodes.
func NewNetwork(n int) *Network { return topology.New(n) }

// GenerateNetwork builds a connected random underlay (uniform model).
func GenerateNetwork(rng *rand.Rand, cfg NetworkConfig) (*Network, error) {
	return topology.GenerateUniform(rng, cfg)
}

// BuildOverlay derives a service overlay from an underlying network: every
// pair of compatible instances with connected hosts is linked with the
// metric of the minimum-latency (IP-style) underlying route — discovering
// wider multi-hop detours is the federation algorithms' job.
func BuildOverlay(under *Network, placements []Placement, compat *Compatibility) (*Overlay, error) {
	return overlay.Build(under, placements, compat)
}

// GenerateScenario builds a complete reproducible workload.
func GenerateScenario(cfg ScenarioConfig) (*Scenario, error) { return scenario.Generate(cfg) }

// GenerateLargeScenario builds a large-overlay workload directly (ring
// backbone plus random links, tiered bandwidths, a path requirement whose
// slot instances are spread across the id space) in O(nodes · degree) — the
// input regime for SolveOptions.Lazy and the contracted hierarchical path.
func GenerateLargeScenario(cfg LargeScenarioConfig) (*Scenario, error) {
	return scenario.GenerateLarge(cfg)
}

// Federate runs the distributed sFlow algorithm: the source instance
// receives the requirement and sfederate messages propagate through the
// overlay until the sinks report the completed flow graph.
func Federate(ov *Overlay, req *Requirement, src int, opts Options) (*Result, error) {
	return core.Federate(ov, req, src, opts)
}

// Baseline runs the paper's polynomial baseline algorithm on a single-path
// requirement (Table 1): all-pairs shortest-widest, abstract graph,
// shortest-widest abstract path, expansion.
//
// Deprecated: use Solve("baseline", ov, req, src, SolveOptions{}).
func Baseline(ov *Overlay, req *Requirement, src int) (*FlowGraph, Metric, error) {
	return legacySolve("baseline", ov, req, src, SolveOptions{})
}

// Heuristic runs the centralised reduction heuristic (path reduction +
// split-and-merge reduction over the baseline) on an arbitrary requirement.
//
// Deprecated: use Solve("heuristic", ov, req, src, SolveOptions{}).
func Heuristic(ov *Overlay, req *Requirement, src int) (*FlowGraph, Metric, error) {
	return legacySolve("heuristic", ov, req, src, SolveOptions{})
}

// Optimal computes the globally optimal service flow graph by exhaustive
// branch-and-bound search — exponential in general (Theorem 1), intended for
// small instances and benchmarking.
//
// Deprecated: use Solve("optimal", ov, req, src, SolveOptions{}).
func Optimal(ov *Overlay, req *Requirement, src int) (*FlowGraph, Metric, error) {
	return legacySolve("optimal", ov, req, src, SolveOptions{})
}

// Fixed runs the fixed control algorithm: each service on the instance
// behind the widest direct link, no lookahead.
//
// Deprecated: use Solve("fixed", ov, req, src, SolveOptions{}).
func Fixed(ov *Overlay, req *Requirement, src int) (*FlowGraph, Metric, error) {
	return legacySolve("fixed", ov, req, src, SolveOptions{})
}

// RandomPlacement runs the random control algorithm with the given rng.
//
// Deprecated: use Solve("random", ov, req, src, SolveOptions{Rng: rng}).
func RandomPlacement(ov *Overlay, req *Requirement, src int, rng *rand.Rand) (*FlowGraph, Metric, error) {
	return legacySolve("random", ov, req, src, SolveOptions{Rng: rng})
}

// ServicePath runs the end-to-end single-path control algorithm (Gu et al.).
// On non-path requirements it only federates the main (longest) chain: the
// returned flow graph is partial, the metric unreachable, and the error is a
// *PartialFederationError matching errors.Is(err, ErrPartialFederation).
//
// Deprecated: use Solve("servicepath", ov, req, src, SolveOptions{}).
func ServicePath(ov *Overlay, req *Requirement, src int) (*FlowGraph, Metric, error) {
	return legacySolve("servicepath", ov, req, src, SolveOptions{})
}

// RepairResult is the outcome of repairing a federation after instance
// failures.
type RepairResult = core.RepairResult

// Repair re-federates a previously computed flow graph after instances
// failed, pinning every unaffected placement so the repair is minimally
// disruptive.
func Repair(ov *Overlay, req *Requirement, prev *FlowGraph, failed []int, opts Options) (*RepairResult, error) {
	return core.Repair(ov, req, prev, failed, opts)
}

// Faults configures the seeded fault-injecting transport decorator (message
// loss, duplication, reordering, node crashes). Pass one in Options.Faults to
// run a federation over a faulty transport; the reliability sublayer
// (sequence numbers, acks, retransmission, deadline) switches on with it.
type Faults = transport.Faults

// Crash pins one explicit node crash in a Faults schedule.
type Crash = transport.Crash

// FaultCounts is a snapshot of what a fault-injecting transport did to the
// traffic that crossed it.
type FaultCounts = transport.FaultCounts

// RepairPartial re-federates after a federation under faults gave up with a
// *PartialFederationError: the unresponsive instances are removed and the
// requirement is re-federated over the survivors, keeping the partial flow
// graph's surviving placements pinned.
func RepairPartial(ov *Overlay, req *Requirement, src int, perr *PartialFederationError, opts Options) (*RepairResult, error) {
	return core.RepairPartial(ov, req, src, perr, opts)
}

// EvaluateAssignment scores a complete SID -> NID instance assignment
// against a requirement over an overlay: the bottleneck bandwidth across all
// induced streams and the critical-path latency. It returns an unreachable
// metric when the assignment cannot realise every stream.
func EvaluateAssignment(ov *Overlay, req *Requirement, assign map[int]int) (Metric, error) {
	ag, err := buildAbstract(ov, req, SolveOptions{})
	if err != nil {
		return qos.Unreachable, err
	}
	return ag.AssignmentMetric(assign), nil
}

// Experiment entry points reproducing the paper's Figure 10 panels and the
// extra ablations; see EXPERIMENTS.md for the expected shapes.
var (
	Fig10a            = experiments.Fig10a
	Fig10b            = experiments.Fig10b
	Fig10c            = experiments.Fig10c
	Fig10d            = experiments.Fig10d
	AblationLookahead = experiments.AblationLookahead
	AblationReduction = experiments.AblationReduction
	AdmissionCapacity = experiments.Admission
	TenantSweep       = experiments.Tenants
	ProtocolOverhead  = experiments.Overhead
	RepairChurn       = experiments.RepairChurn
	BlockingUnderLoad = experiments.Blocking
	HierarchyCompare  = experiments.Hierarchy
	FaultSweep        = experiments.FaultSweep
	DynamicsSweep     = experiments.Dynamics
	ReoptSweep        = experiments.Reopt
	ScaleSweep        = experiments.Scale
	AllExperiments    = experiments.All
	ExperimentReport  = experiments.Report
	ParseScenarioKind = scenario.ParseKind
)

// Workload surface: heterogeneous request streams replayed over a
// provisioned overlay.
type (
	// WorkloadRequest is one federation demand in a generated stream.
	WorkloadRequest = workload.Request
	// WorkloadConfig controls stream generation.
	WorkloadConfig = workload.Config
	// WorkloadResult summarises one replay.
	WorkloadResult = workload.Result
)

// GenerateWorkload draws a Poisson request stream against one requirement
// and source instance.
func GenerateWorkload(req *Requirement, src int, cfg WorkloadConfig) ([]WorkloadRequest, error) {
	return workload.Generate(req, src, cfg)
}

// SimulateWorkload replays a request stream over a fresh provisioner on the
// discrete-event simulator.
func SimulateWorkload(ov *Overlay, reqs []WorkloadRequest, alg FederationAlgorithm) (*WorkloadResult, error) {
	return workload.Simulate(ov, reqs, alg)
}

// Typed-service surface: compatibility derived from declared input/output
// types ("the output produced by one service matches the input requirements
// of the other").
type (
	// ServiceType names a data format flowing between services.
	ServiceType = service.Type
	// ServiceDescription declares one service's typed interface.
	ServiceDescription = service.Description
	// ServiceRegistry holds the typed descriptions of a deployment and
	// derives the compatibility relation from them.
	ServiceRegistry = service.Registry
)

// NewServiceRegistry returns an empty typed-service registry.
func NewServiceRegistry() *ServiceRegistry { return service.NewRegistry() }

// Hierarchical federates through a latency-based cluster hierarchy (the
// divide-and-conquer approach of the related work): one cluster is chosen
// per required service on summarised inter-cluster quality, then the
// instance-level problem is solved inside the chosen clusters.
func Hierarchical(ov *Overlay, req *Requirement, src, k int) (*FlowGraph, Metric, error) {
	r, err := cluster.Federate(ov, req, src, k)
	if err != nil {
		return nil, qos.Unreachable, err
	}
	return r.Flow, r.Metric, nil
}

// Mesh-augmentation surface (the cost-effective augmentation of the paper's
// related work): thin a mesh down and build it back up with shortcut links.

// SparsifyOverlay returns a copy of the overlay keeping each service link
// with the given probability.
func SparsifyOverlay(ov *Overlay, rng *rand.Rand, keep float64) (*Overlay, error) {
	return augment.Sparsify(ov, rng, keep)
}

// AugmentShortcuts adds up to budget direct links that bypass two-hop relay
// routes, widest first (budget <= 0 adds all). Returns how many were added.
func AugmentShortcuts(ov *Overlay, compat *Compatibility, budget int) (int, error) {
	return augment.Shortcut(ov, compat, budget)
}

// DensifyOverlay applies shortcut augmentation to a fixpoint.
func DensifyOverlay(ov *Overlay, compat *Compatibility) (int, error) {
	return augment.Densify(ov, compat)
}

// Optional-services surface (Fig 2 of the paper): requirement slots that
// name several alternative services, expanded and federated to pick the
// best-performing topology.
type (
	// ChoiceSpec is a service requirement with optional alternatives.
	ChoiceSpec = choice.Spec
	// ChoiceResult is the best federation across the expansions.
	ChoiceResult = choice.Result
	// ChoiceSolver federates one concrete expansion.
	ChoiceSolver = choice.Solver
)

// NewChoiceSpec returns an empty optional-services requirement.
func NewChoiceSpec() *ChoiceSpec { return choice.NewSpec() }

// BestChoice expands a spec and federates every concrete expansion with the
// given solver, returning the best result.
func BestChoice(ov *Overlay, spec *ChoiceSpec, src int, solve ChoiceSolver) (*ChoiceResult, error) {
	return choice.Best(ov, spec, src, solve)
}

// Provisioning surface: sequential admission of federation requests over a
// shared overlay with residual bandwidth accounting.
type (
	// Provisioner admits requests and reserves bandwidth on a residual
	// copy of an overlay.
	Provisioner = provision.Manager
	// Admission records one accepted request.
	Admission = provision.Admission
	// FederationAlgorithm is the pluggable federation strategy a
	// Provisioner runs against the residual overlay.
	FederationAlgorithm = provision.Algorithm
)

// ErrRejected is returned by a Provisioner when a request cannot be admitted
// at its demanded bandwidth.
var ErrRejected = provision.ErrRejected

// NewProvisioner starts admission control over a copy of ov.
func NewProvisioner(ov *Overlay) *Provisioner { return provision.NewManager(ov) }

// NewProvisionerMetrics is NewProvisioner with instrumentation into reg
// (nil reg disables it): admission/rejection/release counts and a
// residual-bandwidth utilization histogram.
func NewProvisionerMetrics(ov *Overlay, reg *Metrics) *Provisioner {
	return provision.NewManagerMetrics(ov, reg)
}

// SFlowAlgorithm adapts the distributed sFlow protocol for provisioning with
// explicit protocol Options (faults, reliability, tracing).
//
// Deprecated: use RegistryAlgorithm("sflow", SolveOptions{Metrics: opts.Metrics});
// this wrapper remains only for tuning the full core Options.
func SFlowAlgorithm(opts Options) FederationAlgorithm { return federateAlgorithm(opts) }

// FixedAlgorithm adapts the fixed control algorithm for provisioning.
//
// Deprecated: use RegistryAlgorithm("fixed", SolveOptions{}).
func FixedAlgorithm() FederationAlgorithm { return RegistryAlgorithm("fixed", SolveOptions{}) }

// RandomAlgorithm adapts the random control algorithm for provisioning.
//
// Deprecated: use RegistryAlgorithm("random", SolveOptions{Rng: rng}).
func RandomAlgorithm(rng *rand.Rand) FederationAlgorithm {
	return RegistryAlgorithm("random", SolveOptions{Rng: rng})
}

// HeuristicAlgorithm adapts the centralised reduction heuristic.
//
// Deprecated: use RegistryAlgorithm("heuristic", SolveOptions{}).
func HeuristicAlgorithm() FederationAlgorithm {
	return RegistryAlgorithm("heuristic", SolveOptions{})
}

// Theorem 1 surface: the reduction from SAT to the Maximum Service Flow
// Graph Problem, machine-checkable in both directions.
type (
	// SATFormula is a CNF formula.
	SATFormula = sat.Formula
	// SATLiteral is a propositional literal (+v / -v).
	SATLiteral = sat.Literal
	// SATAssignment maps variables to truth values.
	SATAssignment = sat.Assignment
	// MSFGInstance is a Maximum Service Flow Graph instance produced by
	// the Theorem 1 reduction: a gadget overlay plus a complete-DAG
	// requirement over the clause services.
	MSFGInstance = npc.Instance
)

// TraceRecorder collects the protocol event timeline of a federation run;
// pass one in Options.Trace.
type TraceRecorder = trace.Recorder

// TraceEvent is one timeline entry of a TraceRecorder.
type TraceEvent = trace.Event

// NewTrace returns an empty protocol trace recorder.
func NewTrace() *TraceRecorder { return trace.New() }

// NewSATFormula returns an empty CNF formula over variables 1..numVars.
func NewSATFormula(numVars int) *SATFormula { return sat.New(numVars) }

// ReduceSATToMSFG builds the Theorem 1 gadget for a formula: the formula is
// satisfiable if and only if the gadget admits a service flow graph whose
// minimum edge weight reaches the threshold.
func ReduceSATToMSFG(f *SATFormula) (*MSFGInstance, error) { return npc.Reduce(f) }

// RenderSVG renders an experiment series as a standalone SVG line chart.
func RenderSVG(s *Series) string { return plot.SVG(s) }

// RequirementDOT renders a requirement in Graphviz DOT format.
func RequirementDOT(req *Requirement) string { return dot.Requirement(req) }

// OverlayDOT renders an overlay in Graphviz DOT format.
func OverlayDOT(ov *Overlay) string { return dot.Overlay(ov) }

// FlowDOT renders an overlay with a flow graph highlighted.
func FlowDOT(ov *Overlay, fg *FlowGraph) string { return dot.Flow(ov, fg) }

// AbstractDOT renders the service abstract graph of a requirement over an
// overlay (Fig 6 of the paper) in Graphviz DOT format.
func AbstractDOT(ov *Overlay, req *Requirement) (string, error) {
	ag, err := buildAbstract(ov, req, SolveOptions{})
	if err != nil {
		return "", err
	}
	return dot.Abstract(ag), nil
}
