package sflow_test

import (
	"testing"

	"sflow"
)

// TestReproductionHeadlineClaims guards the paper's qualitative results as
// assertions over a fixed seeded sweep, so any future change that breaks a
// reproduced shape fails CI rather than silently drifting. The bounds are
// deliberately looser than the measured values in EXPERIMENTS.md.
func TestReproductionHeadlineClaims(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-figure sweep")
	}
	cfg := sflow.ExperimentConfig{Sizes: []int{10, 30, 50}, Trials: 10, Seed: 1}

	// Fig 10(a): sFlow has the highest correctness, around 0.9; random
	// trends to coin-flip territory.
	a, err := sflow.Fig10a(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range a.Points {
		if p.Values["sflow"] < 0.8 {
			t.Errorf("fig10a N=%d: sflow correctness %.3f below 0.8", p.X, p.Values["sflow"])
		}
		for _, rival := range []string{"fixed", "random", "servicepath"} {
			if p.Values["sflow"] < p.Values[rival] {
				t.Errorf("fig10a N=%d: sflow %.3f below %s %.3f",
					p.X, p.Values["sflow"], rival, p.Values[rival])
			}
		}
		if p.Values["random"] > 0.75 {
			t.Errorf("fig10a N=%d: random correctness %.3f implausibly high", p.X, p.Values["random"])
		}
	}

	// Fig 10(c): sFlow yields the lowest-latency flow graphs.
	c, err := sflow.Fig10c(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range c.Points {
		if p.Values["sflow"] > p.Values["fixed"] || p.Values["sflow"] > p.Values["random"] {
			t.Errorf("fig10c N=%d: sflow latency %.0f not lowest (fixed %.0f, random %.0f)",
				p.X, p.Values["sflow"], p.Values["fixed"], p.Values["random"])
		}
	}

	// Fig 10(d): optimal >= sflow >= fixed >= random in bandwidth, and
	// sFlow tracks the optimal closely.
	d, err := sflow.Fig10d(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range d.Points {
		opt, sf, fx, rd := p.Values["optimal"], p.Values["sflow"], p.Values["fixed"], p.Values["random"]
		if !(opt >= sf && sf >= fx && fx >= rd) {
			t.Errorf("fig10d N=%d: ordering violated: opt %.0f sflow %.0f fixed %.0f random %.0f",
				p.X, opt, sf, fx, rd)
		}
		if sf < 0.9*opt {
			t.Errorf("fig10d N=%d: sflow %.0f below 90%% of optimal %.0f", p.X, sf, opt)
		}
	}

	// Fig 10(b): both computation-time curves grow with network size, and
	// they stay within an order of magnitude of each other.
	b, err := sflow.Fig10b(cfg)
	if err != nil {
		t.Fatal(err)
	}
	first, last := b.Points[0], b.Points[len(b.Points)-1]
	if last.Values["sflow"] <= first.Values["sflow"] {
		t.Errorf("fig10b: sflow time does not grow (%.0f -> %.0f us)",
			first.Values["sflow"], last.Values["sflow"])
	}
	if last.Values["optimal"] <= first.Values["optimal"] {
		t.Errorf("fig10b: optimal time does not grow (%.0f -> %.0f us)",
			first.Values["optimal"], last.Values["optimal"])
	}
	for _, p := range b.Points {
		ratio := p.Values["sflow"] / p.Values["optimal"]
		if ratio < 0.1 || ratio > 10 {
			t.Errorf("fig10b N=%d: time ratio %.2f out of the paper's comparable range", p.X, ratio)
		}
	}
}
