package sflow_test

import (
	"errors"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"sflow"
)

// apiScenario is a small contended workload for the admission-API tests.
func apiScenario(t testing.TB, seed int64) *sflow.Scenario {
	t.Helper()
	sc, err := sflow.GenerateScenario(sflow.ScenarioConfig{
		Seed:                seed,
		NetworkSize:         24,
		Services:            5,
		InstancesPerService: 3,
		Kind:                sflow.KindGeneral,
	})
	if err != nil {
		t.Fatal(err)
	}
	return sc
}

// RegistryAlgorithm must agree byte for byte with the deprecated
// constructors it replaces, for every registered name they cover.
func TestRegistryAlgorithmMatchesDeprecatedConstructors(t *testing.T) {
	sc := apiScenario(t, 11)
	cases := []struct {
		name       string
		registry   sflow.FederationAlgorithm
		deprecated sflow.FederationAlgorithm
	}{
		{"fixed", sflow.RegistryAlgorithm("fixed", sflow.SolveOptions{}), sflow.FixedAlgorithm()},
		{"heuristic", sflow.RegistryAlgorithm("heuristic", sflow.SolveOptions{}), sflow.HeuristicAlgorithm()},
		{"random", sflow.RegistryAlgorithm("random", sflow.SolveOptions{Rng: rand.New(rand.NewSource(5))}),
			sflow.RandomAlgorithm(rand.New(rand.NewSource(5)))},
		{"sflow", sflow.RegistryAlgorithm("sflow", sflow.SolveOptions{}), sflow.SFlowAlgorithm(sflow.Options{})},
	}
	for _, c := range cases {
		gotF, gotM, gotErr := c.registry(sc.Overlay, sc.Req, sc.SourceNID)
		wantF, wantM, wantErr := c.deprecated(sc.Overlay, sc.Req, sc.SourceNID)
		if (gotErr == nil) != (wantErr == nil) {
			t.Fatalf("%s: err %v vs %v", c.name, gotErr, wantErr)
		}
		if gotM != wantM {
			t.Fatalf("%s: metric %+v vs %+v", c.name, gotM, wantM)
		}
		if !reflect.DeepEqual(gotF.Assignment(), wantF.Assignment()) {
			t.Fatalf("%s: assignment %v vs %v", c.name, gotF.Assignment(), wantF.Assignment())
		}
	}
	// Every remaining registry name is reachable through the new API too.
	for _, name := range sflow.Algorithms() {
		alg := sflow.RegistryAlgorithm(name, sflow.SolveOptions{})
		if _, _, err := alg(sc.Overlay, sc.Req, sc.SourceNID); err != nil &&
			!errors.Is(err, sflow.ErrPartialFederation) &&
			name != "baseline" { // baseline requires path-shaped requirements
			t.Fatalf("%s: %v", name, err)
		}
	}
	// Unknown names surface ErrUnknownAlgorithm at run time.
	if _, _, err := sflow.RegistryAlgorithm("nope", sflow.SolveOptions{})(sc.Overlay, sc.Req, sc.SourceNID); !errors.Is(err, sflow.ErrUnknownAlgorithm) {
		t.Fatalf("err = %v, want ErrUnknownAlgorithm", err)
	}
}

func TestAllocatorPublicAPI(t *testing.T) {
	sc := apiScenario(t, 3)
	reg := sflow.NewMetrics()
	al := sflow.NewAllocator(sc.Overlay, sflow.AllocatorOptions{
		Classes: 2,
		Quotas:  []int{0, 4},
		Preempt: true,
		Metrics: reg,
	})
	defer al.Close()

	tk, err := al.Admit(sc.Req, sc.SourceNID, sflow.AdmitOptions{Demand: 50, Class: 1})
	if err != nil {
		t.Fatal(err)
	}
	if tk.ID == 0 || tk.Tag != "heuristic" {
		t.Fatalf("ticket = %+v", tk)
	}
	tenants := al.Tenants()
	if len(tenants) != 1 || tenants[0].Class != 1 {
		t.Fatalf("tenants = %+v", tenants)
	}
	// Saturate until a typed rejection appears and check its shape.
	var aerr *sflow.AdmissionError
	for i := 0; i < 200; i++ {
		_, err := al.Admit(sc.Req, sc.SourceNID, sflow.AdmitOptions{Demand: 400, Algorithm: "heuristic"})
		if err == nil {
			continue
		}
		if !errors.Is(err, sflow.ErrRejected) || !errors.As(err, &aerr) {
			t.Fatalf("rejection not typed: %v", err)
		}
		break
	}
	if aerr == nil {
		t.Fatal("never rejected despite demand 400 spam")
	}
	switch aerr.Reason {
	case sflow.ReasonBandwidth, sflow.ReasonNoFlow, sflow.ReasonCompute, sflow.ReasonQuota:
	default:
		t.Fatalf("unknown reason %q", aerr.Reason)
	}
	if al.Utilization() == 0 {
		t.Fatal("utilization 0 with a 50-demand tenant admitted")
	}
	if res := al.Residual(); res == nil || res.NumInstances() != sc.Overlay.NumInstances() {
		t.Fatalf("residual snapshot = %v", res)
	}
	if err := al.Release(tk.ID); err != nil {
		t.Fatal(err)
	}
	if err := al.Release(tk.ID); !errors.Is(err, sflow.ErrNoTicket) {
		t.Fatalf("double release err = %v, want ErrNoTicket", err)
	}
	if cc := al.Classes(); cc[1].Admitted == 0 || cc[1].Released != 1 {
		t.Fatalf("counters = %+v", cc)
	}
	// The metrics registry saw the admissions.
	if txt := reg.Snapshot().Text(); txt == "" {
		t.Fatal("empty metrics snapshot")
	}
	al.Close()
	if _, err := al.Admit(sc.Req, sc.SourceNID, sflow.AdmitOptions{Demand: 1}); !errors.Is(err, sflow.ErrAllocatorClosed) {
		t.Fatalf("post-Close err = %v, want ErrAllocatorClosed", err)
	}
}

// The default Tag (= algorithm name) makes logs self-describing: a nil
// algFor replays them against the registry.
func TestReplayAdmissionsWithNilAlgFor(t *testing.T) {
	sc := apiScenario(t, 5)
	opts := sflow.AllocatorOptions{Classes: 2, Preempt: true}
	al := sflow.NewAllocator(sc.Overlay, opts)
	defer al.Close()
	rng := rand.New(rand.NewSource(9))
	var ids []uint64
	for i := 0; i < 40; i++ {
		tk, err := al.Admit(sc.Req, sc.SourceNID, sflow.AdmitOptions{
			Demand: int64(30 + rng.Intn(120)), Class: rng.Intn(2),
		})
		if err == nil {
			ids = append(ids, tk.ID)
			continue
		}
		if !errors.Is(err, sflow.ErrRejected) {
			t.Fatal(err)
		}
	}
	for _, id := range ids[:len(ids)/2] {
		if err := al.Release(id); err != nil && !errors.Is(err, sflow.ErrNoTicket) {
			t.Fatal(err)
		}
	}
	seq, err := sflow.ReplayAdmissions(sc.Overlay, opts, al.Log(), nil)
	if err != nil {
		t.Fatalf("replay diverged: %v", err)
	}
	if got, want := al.Tenants(), seq.Tenants(); !reflect.DeepEqual(got, want) {
		t.Fatalf("tenants diverge:\nlive %+v\n seq %+v", got, want)
	}
	if got, want := al.Classes(), seq.Classes(); !reflect.DeepEqual(got, want) {
		t.Fatalf("counters diverge:\nlive %+v\n seq %+v", got, want)
	}
}

// TTL leases expire through the same writer loop as explicit releases.
func TestAllocatorTTLThroughPublicAPI(t *testing.T) {
	sc := apiScenario(t, 2)
	al := sflow.NewAllocator(sc.Overlay, sflow.AllocatorOptions{})
	defer al.Close()
	if _, err := al.Admit(sc.Req, sc.SourceNID, sflow.AdmitOptions{
		Demand: 40, TTL: 10 * time.Millisecond,
	}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for len(al.Tenants()) != 0 {
		if time.Now().After(deadline) {
			t.Fatal("lease never expired")
		}
		time.Sleep(2 * time.Millisecond)
	}
	if cc := al.Classes(); cc[0].Expired != 1 {
		t.Fatalf("counters = %+v", cc)
	}
}
