package sflow_test

import (
	"errors"
	"math/rand"
	"strings"
	"testing"

	"sflow"
)

// buildTravelOverlay assembles the paper's running example by hand through
// the public API: Travel Engine (1) -> Car Rental (2) / Map (3);
// 2 -> Currency (4); 3 -> 4; 4 -> Agency (5); with two instances of the
// Currency service.
func buildTravelOverlay(t *testing.T) (*sflow.Overlay, *sflow.Requirement) {
	t.Helper()
	req, err := sflow.RequirementFromEdges([][2]int{{1, 2}, {1, 3}, {2, 4}, {3, 4}, {4, 5}})
	if err != nil {
		t.Fatal(err)
	}
	ov := sflow.NewOverlay()
	for _, in := range [][2]int{{1, 1}, {2, 2}, {3, 3}, {40, 4}, {41, 4}, {5, 5}} {
		if err := ov.AddInstance(in[0], in[1], -1); err != nil {
			t.Fatal(err)
		}
	}
	for _, l := range [][4]int64{
		{1, 2, 90, 100}, {1, 3, 90, 120},
		{2, 40, 100, 50}, {3, 40, 20, 50},
		{2, 41, 70, 60}, {3, 41, 70, 40},
		{40, 5, 100, 30}, {41, 5, 80, 30},
	} {
		if err := ov.AddLink(int(l[0]), int(l[1]), l[2], l[3]); err != nil {
			t.Fatal(err)
		}
	}
	return ov, req
}

func TestPublicFederate(t *testing.T) {
	ov, req := buildTravelOverlay(t)
	res, err := sflow.Federate(ov, req, 1, sflow.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Flow.Validate(req, ov); err != nil {
		t.Fatalf("invalid flow: %v", err)
	}
	// Instance 41 balances both branches into the Currency merge.
	if nid, _ := res.Flow.Assigned(4); nid != 41 {
		t.Fatalf("currency on %d, want 41", nid)
	}
	opt, optMetric, err := sflow.Optimal(ov, req, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Metric.Better(optMetric) {
		t.Fatal("distributed result beats optimal")
	}
	if cc := res.Flow.CorrectnessCoefficient(opt); cc != 1.0 {
		t.Fatalf("correctness = %v, want 1 on this instance", cc)
	}
}

// Paths returned through the public surface are defensive copies: a caller
// scribbling over a returned route must not corrupt later queries against
// the same flow graph.
func TestPublicPathsAreDefensiveCopies(t *testing.T) {
	ov, req := buildTravelOverlay(t)
	res, err := sflow.Federate(ov, req, 1, sflow.Options{})
	if err != nil {
		t.Fatal(err)
	}
	before := res.Flow.Edges()
	for _, e := range before {
		for i := range e.Path {
			e.Path[i] = -1
		}
	}
	if err := res.Flow.Validate(req, ov); err != nil {
		t.Fatalf("mutating returned paths corrupted the flow graph: %v", err)
	}
	after := res.Flow.Edges()
	for i := range after {
		for _, n := range after[i].Path {
			if n < 0 {
				t.Fatalf("edge %d->%d path carries the caller's scribbles: %v",
					after[i].FromSID, after[i].ToSID, after[i].Path)
			}
		}
	}
}

func TestPublicCentralisedAlgorithms(t *testing.T) {
	ov, req := buildTravelOverlay(t)

	if _, _, err := sflow.Baseline(ov, req, 1); err == nil {
		t.Fatal("baseline must reject a DAG requirement")
	}
	fg, m, err := sflow.Heuristic(ov, req, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := fg.Validate(req, ov); err != nil {
		t.Fatal(err)
	}
	if !m.Reachable() {
		t.Fatal("heuristic metric unreachable")
	}

	if _, fm, err := sflow.Fixed(ov, req, 1); err != nil || !fm.Reachable() {
		t.Fatalf("fixed: %v %+v", err, fm)
	}
	if _, rm, err := sflow.RandomPlacement(ov, req, 1, rand.New(rand.NewSource(1))); err != nil || !rm.Reachable() {
		t.Fatalf("random: %v %+v", err, rm)
	}
	spFlow, spMetric, err := sflow.ServicePath(ov, req, 1)
	if !errors.Is(err, sflow.ErrPartialFederation) {
		t.Fatalf("service path on a DAG: got err %v, want ErrPartialFederation", err)
	}
	var partial *sflow.PartialFederationError
	if !errors.As(err, &partial) || partial.Flow == nil {
		t.Fatalf("service path error should carry the partial flow, got %v", err)
	}
	if spMetric.Reachable() || spFlow == nil || spFlow.Complete(req) {
		t.Fatal("service path should be partial on a DAG")
	}
	if partial.Flow != spFlow {
		t.Fatal("wrapper flow and error flow should be the same partial graph")
	}

	// Baseline works on the path sub-requirement.
	path, err := sflow.PathRequirement(1, 2, 4, 5)
	if err != nil {
		t.Fatal(err)
	}
	bFlow, bMetric, err := sflow.Baseline(ov, path, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := bFlow.Validate(path, ov); err != nil {
		t.Fatal(err)
	}
	_, optMetric, err := sflow.Optimal(ov, path, 1)
	if err != nil {
		t.Fatal(err)
	}
	if bMetric != optMetric {
		t.Fatalf("baseline %+v != optimal %+v on a path", bMetric, optMetric)
	}
}

func TestPublicScenarioAndNetwork(t *testing.T) {
	sc, err := sflow.GenerateScenario(sflow.ScenarioConfig{
		Seed: 7, NetworkSize: 20, Services: 5, Kind: sflow.KindGeneral,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sflow.Federate(sc.Overlay, sc.Req, sc.SourceNID, sflow.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Flow.Validate(sc.Req, sc.Overlay); err != nil {
		t.Fatal(err)
	}

	nw, err := sflow.GenerateNetwork(rand.New(rand.NewSource(1)), sflow.NetworkConfig{Nodes: 10, ExtraLinks: -1})
	if err != nil {
		t.Fatal(err)
	}
	compat := sflow.NewCompatibility()
	compat.Allow(1, 2)
	ov, err := sflow.BuildOverlay(nw, []sflow.Placement{
		{NID: 0, SID: 1, Host: 0}, {NID: 1, SID: 2, Host: 9},
	}, compat)
	if err != nil {
		t.Fatal(err)
	}
	if !ov.HasLink(0, 1) {
		t.Fatal("derived overlay missing link")
	}
}

func TestPublicDOT(t *testing.T) {
	ov, req := buildTravelOverlay(t)
	res, err := sflow.Federate(ov, req, 1, sflow.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sflow.RequirementDOT(req), "digraph requirement") {
		t.Fatal("requirement DOT wrong")
	}
	if !strings.Contains(sflow.OverlayDOT(ov), "digraph overlay") {
		t.Fatal("overlay DOT wrong")
	}
	if !strings.Contains(sflow.FlowDOT(ov, res.Flow), "digraph flowgraph") {
		t.Fatal("flow DOT wrong")
	}
}

func TestPublicExperimentsSmoke(t *testing.T) {
	cfg := sflow.ExperimentConfig{Sizes: []int{10}, Trials: 2, Seed: 2, Services: 5, Instances: 2}
	s, err := sflow.Fig10a(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Points) != 1 {
		t.Fatalf("points = %d", len(s.Points))
	}
	if _, err := sflow.ParseScenarioKind("general"); err != nil {
		t.Fatal(err)
	}
}

func TestPublicConstructionHelpers(t *testing.T) {
	req := sflow.NewRequirement()
	req.AddDependency(1, 2)
	if err := req.Validate(); err != nil {
		t.Fatal(err)
	}
	nw := sflow.NewNetwork(3)
	if err := nw.AddLink(0, 1, 10, 1); err != nil {
		t.Fatal(err)
	}
	if nw.Size() != 3 {
		t.Fatalf("Size = %d", nw.Size())
	}
}

func TestPublicEvaluateAssignment(t *testing.T) {
	ov, req := buildTravelOverlay(t)
	res, err := sflow.Federate(ov, req, 1, sflow.Options{})
	if err != nil {
		t.Fatal(err)
	}
	m, err := sflow.EvaluateAssignment(ov, req, res.Flow.Assignment())
	if err != nil {
		t.Fatal(err)
	}
	// The evaluation scores the same assignment at least as well as the
	// committed streams (it may find better routes per stream).
	if m.Bandwidth < res.Metric.Bandwidth {
		t.Fatalf("evaluation %+v below federation %+v", m, res.Metric)
	}
	if _, err := sflow.EvaluateAssignment(ov, req, map[int]int{1: 1}); err != nil {
		// Incomplete assignments yield an unreachable metric, not an error.
		t.Fatalf("unexpected error: %v", err)
	}
}

func TestPublicChoice(t *testing.T) {
	ov, _ := buildTravelOverlay(t)
	spec := sflow.NewChoiceSpec()
	for _, term := range [][]int{{1, 1}, {2, 2}, {5, 5}} {
		if err := spec.AddTerm(term[0], term[1]); err != nil {
			t.Fatal(err)
		}
	}
	if err := spec.AddTerm(40, 4, 3); err != nil { // Currency or Map slot
		t.Fatal(err)
	}
	for _, e := range [][2]int{{1, 2}, {2, 40}, {40, 5}} {
		if err := spec.Connect(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	res, err := sflow.BestChoice(ov, spec, 1, func(o *sflow.Overlay, r *sflow.Requirement, s int) (*sflow.FlowGraph, sflow.Metric, error) {
		return sflow.Optimal(o, r, s)
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Considered != 2 {
		t.Fatalf("considered %d expansions", res.Considered)
	}
	if err := res.Flow.Validate(res.Req, ov); err != nil {
		t.Fatal(err)
	}
}

func TestPublicProvisionAlgorithms(t *testing.T) {
	sc, err := sflow.GenerateScenario(sflow.ScenarioConfig{
		Seed: 2, NetworkSize: 12, Services: 4, InstancesPerService: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	for name, alg := range map[string]sflow.FederationAlgorithm{
		"fixed":  sflow.FixedAlgorithm(),
		"random": sflow.RandomAlgorithm(rand.New(rand.NewSource(3))),
	} {
		p := sflow.NewProvisioner(sc.Overlay)
		if _, err := p.Admit(sc.Req, sc.SourceNID, 50, alg); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if p.NumAdmitted() != 1 {
			t.Fatalf("%s: admitted %d", name, p.NumAdmitted())
		}
	}
}

func TestPublicAbstractDOT(t *testing.T) {
	ov, req := buildTravelOverlay(t)
	d, err := sflow.AbstractDOT(ov, req)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(d, "digraph abstract") {
		t.Fatalf("dot = %q", d[:40])
	}
	bad, err := sflow.PathRequirement(1, 77)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sflow.AbstractDOT(ov, bad); err == nil {
		t.Fatal("uninstantiated service accepted")
	}
}

func TestPublicHierarchical(t *testing.T) {
	sc, err := sflow.GenerateScenario(sflow.ScenarioConfig{
		Seed: 6, NetworkSize: 16, Services: 5, InstancesPerService: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	fg, m, err := sflow.Hierarchical(sc.Overlay, sc.Req, sc.SourceNID, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := fg.Validate(sc.Req, sc.Overlay); err != nil {
		t.Fatal(err)
	}
	_, optMetric, err := sflow.Optimal(sc.Overlay, sc.Req, sc.SourceNID)
	if err != nil {
		t.Fatal(err)
	}
	if m.Better(optMetric) {
		t.Fatalf("hierarchical %+v beats optimal %+v", m, optMetric)
	}
	if _, _, err := sflow.Hierarchical(sc.Overlay, sc.Req, sc.SourceNID, 0); err == nil {
		t.Fatal("k=0 accepted")
	}
}

func TestPublicAugmentation(t *testing.T) {
	sc, err := sflow.GenerateScenario(sflow.ScenarioConfig{
		Seed: 8, NetworkSize: 14, Services: 5, InstancesPerService: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	compat := sflow.NewCompatibility()
	for _, e := range sc.Req.Edges() {
		compat.Allow(e[0], e[1])
	}
	thin, err := sflow.SparsifyOverlay(sc.Overlay, rand.New(rand.NewSource(1)), 0.6)
	if err != nil {
		t.Fatal(err)
	}
	if thin.NumLinks() >= sc.Overlay.NumLinks() {
		t.Fatal("sparsify did nothing")
	}
	before := thin.NumLinks()
	if _, err := sflow.AugmentShortcuts(thin, compat, 3); err != nil {
		t.Fatal(err)
	}
	if thin.NumLinks() > before+3 {
		t.Fatal("budget exceeded")
	}
	if _, err := sflow.DensifyOverlay(thin, compat); err != nil {
		t.Fatal(err)
	}
	// Densified to fixpoint: no further candidates.
	n, err := sflow.AugmentShortcuts(thin, compat, 0)
	if err != nil || n != 0 {
		t.Fatalf("fixpoint violated: added %d (%v)", n, err)
	}
}

func TestPublicRenderSVG(t *testing.T) {
	s, err := sflow.Fig10a(sflow.ExperimentConfig{Sizes: []int{10}, Trials: 1, Seed: 4, Services: 4, Instances: 2})
	if err != nil {
		t.Fatal(err)
	}
	svg := sflow.RenderSVG(s)
	if !strings.HasPrefix(svg, "<svg") || !strings.Contains(svg, "sflow") {
		t.Fatalf("svg = %q", svg[:40])
	}
}

func TestPublicErrorPaths(t *testing.T) {
	// A requirement naming a service with no instance: every centralised
	// algorithm must reject it at the abstract-graph stage.
	ov, _ := buildTravelOverlay(t)
	ghost, err := sflow.PathRequirement(1, 2, 777)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := sflow.Heuristic(ov, ghost, 1); err == nil {
		t.Fatal("heuristic accepted ghost service")
	}
	if _, _, err := sflow.Fixed(ov, ghost, 1); err == nil {
		t.Fatal("fixed accepted ghost service")
	}
	if _, _, err := sflow.RandomPlacement(ov, ghost, 1, rand.New(rand.NewSource(1))); err == nil {
		t.Fatal("random accepted ghost service")
	}
	if _, _, err := sflow.ServicePath(ov, ghost, 1); err == nil {
		t.Fatal("servicepath accepted ghost service")
	}
	if _, err := sflow.EvaluateAssignment(ov, ghost, map[int]int{}); err == nil {
		t.Fatal("evaluate accepted ghost service")
	}
}

func TestPublicServiceRegistry(t *testing.T) {
	reg := sflow.NewServiceRegistry()
	for _, d := range []sflow.ServiceDescription{
		{SID: 1, Name: "src", Outputs: []sflow.ServiceType{"x"}},
		{SID: 2, Name: "mid", Inputs: []sflow.ServiceType{"x"}, Outputs: []sflow.ServiceType{"y"}},
		{SID: 3, Name: "dst", Inputs: []sflow.ServiceType{"y"}},
	} {
		if err := reg.Register(d); err != nil {
			t.Fatal(err)
		}
	}
	compat := reg.Compatibility()
	if !compat.Compatible(1, 2) || !compat.Compatible(2, 3) || compat.Compatible(1, 3) {
		t.Fatal("derived compatibility wrong")
	}
	if err := reg.Validate([][2]int{{1, 3}}); err == nil {
		t.Fatal("type mismatch accepted")
	}
}

func TestPublicWorkload(t *testing.T) {
	sc, err := sflow.GenerateScenario(sflow.ScenarioConfig{
		Seed: 12, NetworkSize: 15, Services: 5, InstancesPerService: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	reqs, err := sflow.GenerateWorkload(sc.Req, sc.SourceNID, sflow.WorkloadConfig{
		Seed: 1, Count: 25, MeanInterarrival: 20_000, MeanHolding: 60_000,
		DemandMin: 50, DemandMax: 200,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sflow.SimulateWorkload(sc.Overlay, reqs, sflow.SFlowAlgorithm(sflow.Options{}))
	if err != nil {
		t.Fatal(err)
	}
	if res.Admitted+res.Blocked != res.Offered || res.Offered != 25 {
		t.Fatalf("accounting wrong: %+v", res)
	}
	if p := res.BlockingProbability(); p < 0 || p > 1 {
		t.Fatalf("blocking probability %v", p)
	}
}
