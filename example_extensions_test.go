package sflow_test

import (
	"fmt"

	"sflow"
)

// diamond builds the documentation overlay used by several examples.
func diamond() (*sflow.Overlay, *sflow.Requirement) {
	ov := sflow.NewOverlay()
	for _, in := range [][2]int{{10, 1}, {20, 2}, {30, 3}, {40, 4}, {41, 4}} {
		if err := ov.AddInstance(in[0], in[1], -1); err != nil {
			panic(err)
		}
	}
	for _, l := range [][4]int64{
		{10, 20, 100, 10}, {10, 30, 100, 10},
		{20, 40, 100, 10}, {30, 40, 10, 10},
		{20, 41, 80, 10}, {30, 41, 80, 10},
	} {
		if err := ov.AddLink(int(l[0]), int(l[1]), l[2], l[3]); err != nil {
			panic(err)
		}
	}
	req, err := sflow.RequirementFromEdges([][2]int{{1, 2}, {1, 3}, {2, 4}, {3, 4}})
	if err != nil {
		panic(err)
	}
	return ov, req
}

// ExampleRepair fails the federated merge instance and repairs with minimal
// churn: only the victim service moves.
func ExampleRepair() {
	ov, req := diamond()
	res, err := sflow.Federate(ov, req, 10, sflow.Options{})
	if err != nil {
		panic(err)
	}
	victim, _ := res.Flow.Assigned(4)
	rep, err := sflow.Repair(ov, req, res.Flow, []int{victim}, sflow.Options{})
	if err != nil {
		panic(err)
	}
	after, _ := rep.Flow.Assigned(4)
	fmt.Println(victim, "->", after, "moved:", rep.Moved)
	// Output:
	// 41 -> 40 moved: [4]
}

// ExampleHierarchical runs the cluster-based divide-and-conquer federation.
func ExampleHierarchical() {
	ov, req := diamond()
	fg, m, err := sflow.Hierarchical(ov, req, 10, 2)
	if err != nil {
		panic(err)
	}
	fmt.Println(fg.Complete(req), m.Reachable())
	// Output:
	// true true
}

// ExampleBestChoice resolves an optional-services slot (Fig 2) to the
// better-performing alternative.
func ExampleBestChoice() {
	ov := sflow.NewOverlay()
	for _, in := range [][2]int{{1, 1}, {2, 2}, {3, 3}, {9, 9}} {
		if err := ov.AddInstance(in[0], in[1], -1); err != nil {
			panic(err)
		}
	}
	// Alternative 2 is wide, alternative 3 narrow.
	for _, l := range [][4]int64{{1, 2, 90, 1}, {2, 9, 90, 1}, {1, 3, 20, 1}, {3, 9, 20, 1}} {
		if err := ov.AddLink(int(l[0]), int(l[1]), l[2], l[3]); err != nil {
			panic(err)
		}
	}
	spec := sflow.NewChoiceSpec()
	for _, step := range []error{
		spec.AddTerm(1, 1),
		spec.AddTerm(50, 2, 3), // either service 2 or service 3
		spec.AddTerm(9, 9),
		spec.Connect(1, 50),
		spec.Connect(50, 9),
	} {
		if step != nil {
			panic(step)
		}
	}
	res, err := sflow.BestChoice(ov, spec, 1,
		func(o *sflow.Overlay, r *sflow.Requirement, s int) (*sflow.FlowGraph, sflow.Metric, error) {
			return sflow.Optimal(o, r, s)
		})
	if err != nil {
		panic(err)
	}
	fmt.Println(res.Req.Has(2), res.Req.Has(3), res.Metric.Bandwidth)
	// Output:
	// true false 90
}

// ExampleSimulateWorkload replays a mixed Poisson request stream over a
// provisioned overlay.
func ExampleSimulateWorkload() {
	sc, err := sflow.GenerateScenario(sflow.ScenarioConfig{
		Seed: 12, NetworkSize: 15, Services: 5, InstancesPerService: 2,
	})
	if err != nil {
		panic(err)
	}
	reqs, err := sflow.GenerateWorkload(sc.Req, sc.SourceNID, sflow.WorkloadConfig{
		Seed: 1, Count: 20, MeanInterarrival: 50_000, MeanHolding: 20_000,
		DemandMin: 10, DemandMax: 50,
	})
	if err != nil {
		panic(err)
	}
	res, err := sflow.SimulateWorkload(sc.Overlay, reqs, sflow.HeuristicAlgorithm())
	if err != nil {
		panic(err)
	}
	fmt.Println(res.Offered, res.Admitted+res.Blocked == res.Offered)
	// Output:
	// 20 true
}

// ExampleNewServiceRegistry derives compatibility from typed interfaces.
func ExampleNewServiceRegistry() {
	reg := sflow.NewServiceRegistry()
	for _, d := range []sflow.ServiceDescription{
		{SID: 1, Name: "camera", Outputs: []sflow.ServiceType{"video/raw"}},
		{SID: 2, Name: "transcoder", Inputs: []sflow.ServiceType{"video/raw"}, Outputs: []sflow.ServiceType{"video/h264"}},
		{SID: 3, Name: "viewer", Inputs: []sflow.ServiceType{"video/h264"}},
	} {
		if err := reg.Register(d); err != nil {
			panic(err)
		}
	}
	compat := reg.Compatibility()
	fmt.Println(compat.Compatible(1, 2), compat.Compatible(2, 3), compat.Compatible(1, 3))
	// Output:
	// true true false
}

// ExampleTraceRecorder_Mermaid renders a federation timeline as a sequence
// diagram.
func ExampleTraceRecorder_Mermaid() {
	ov, req := diamond()
	rec := sflow.NewTrace()
	if _, err := sflow.Federate(ov, req, 10, sflow.Options{Trace: rec}); err != nil {
		panic(err)
	}
	out := rec.Mermaid()
	fmt.Println(len(out) > 0 && out[:15] == "sequenceDiagram")
	// Output:
	// true
}
