package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestFailoverOutput(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"FAILURE: instance", "repair:", "scratch:", "agility with minimal churn",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}
