// Failover: the "agile" half of the paper's title. A federation is running
// when the instance serving one of its services fails. Repair re-federates
// with every unaffected placement pinned, so only the victim moves; the
// example contrasts that with tearing everything down and federating from
// scratch on the surviving overlay.
package main

import (
	"fmt"
	"io"
	"log"
	"os"

	"sflow"
)

func main() {
	if err := run(os.Stdout); err != nil {
		log.Fatal(err)
	}
}

func run(w io.Writer) error {
	sc, err := sflow.GenerateScenario(sflow.ScenarioConfig{
		Seed: 42, NetworkSize: 25, Services: 6,
		InstancesPerService: 3, Kind: sflow.KindGeneral,
	})
	if err != nil {
		return err
	}
	before, err := sflow.Federate(sc.Overlay, sc.Req, sc.SourceNID, sflow.Options{})
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "failover: repair vs re-federate after an instance failure")
	fmt.Fprintf(w, "running federation: %v (bandwidth %d Kbit/s)\n\n",
		before.Flow, before.Metric.Bandwidth)

	// The instance serving the second service in topological order dies.
	victimSID := sc.Req.TopoOrder()[1]
	victim, _ := before.Flow.Assigned(victimSID)
	fmt.Fprintf(w, "FAILURE: instance %d (serving service %d) goes down\n\n", victim, victimSID)

	rep, err := sflow.Repair(sc.Overlay, sc.Req, before.Flow, []int{victim}, sflow.Options{})
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "repair:   %v\n", rep.Flow)
	fmt.Fprintf(w, "  affected services %v, moved %v, bandwidth %d Kbit/s\n",
		rep.Affected, rep.Moved, rep.Metric.Bandwidth)

	// The blunt alternative: forget the old graph and start over on the
	// surviving overlay.
	surviving := sc.Overlay.Clone()
	if err := surviving.RemoveInstance(victim); err != nil {
		return err
	}
	scratch, err := sflow.Federate(surviving, sc.Req, sc.SourceNID, sflow.Options{})
	if err != nil {
		return err
	}
	moved := 0
	for _, sid := range sc.Req.Services() {
		b, _ := before.Flow.Assigned(sid)
		a, _ := scratch.Flow.Assigned(sid)
		if a != b {
			moved++
		}
	}
	fmt.Fprintf(w, "scratch:  %v\n", scratch.Flow)
	fmt.Fprintf(w, "  %d services moved, bandwidth %d Kbit/s\n\n", moved, scratch.Metric.Bandwidth)

	fmt.Fprintf(w, "repair touched %d service(s); re-federating moved %d — agility with minimal churn\n",
		len(rep.Moved), moved)
	return nil
}
