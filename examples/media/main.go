// Media: a streaming-pipeline federation, the application domain that
// motivated the earlier service-path systems the paper generalises. A media
// source is transcoded and watermarked on parallel video/audio branches that
// re-merge at a muxer before encrypted delivery — a split-and-merge
// requirement a single service path cannot express. The example contrasts
// the sFlow DAG federation against the single-service-path approach.
package main

import (
	"errors"
	"fmt"
	"io"
	"log"
	"math/rand"
	"os"

	"sflow"
)

// Services of the media pipeline.
const (
	source = iota + 1
	demuxer
	videoTranscoder
	audioTranscoder
	muxer
	encryptor
	client
)

var serviceName = map[int]string{
	source:          "MediaSource",
	demuxer:         "Demuxer",
	videoTranscoder: "VideoTranscoder",
	audioTranscoder: "AudioTranscoder",
	muxer:           "Muxer",
	encryptor:       "Encryptor",
	client:          "Client",
}

func main() {
	if err := run(os.Stdout); err != nil {
		log.Fatal(err)
	}
}

func run(w io.Writer) error {
	// Video and audio are processed in parallel between the demuxer and
	// the muxer — the split-and-merge topology of Fig 8.
	req, err := sflow.RequirementFromEdges([][2]int{
		{source, demuxer},
		{demuxer, videoTranscoder}, {demuxer, audioTranscoder},
		{videoTranscoder, muxer}, {audioTranscoder, muxer},
		{muxer, encryptor},
		{encryptor, client},
	})
	if err != nil {
		return err
	}

	rng := rand.New(rand.NewSource(13))
	under, err := sflow.GenerateNetwork(rng, sflow.NetworkConfig{
		Nodes: 25, ExtraLinks: 15, MinBandwidth: 100, MaxBandwidth: 8000,
	})
	if err != nil {
		return err
	}
	compat := sflow.NewCompatibility()
	for _, e := range req.Edges() {
		compat.Allow(e[0], e[1])
	}
	var placements []sflow.Placement
	nid := 0
	for _, sid := range req.Services() {
		n := 3 // three candidate instances per processing stage
		if sid == source || sid == client {
			n = 1
		}
		for k := 0; k < n; k++ {
			placements = append(placements, sflow.Placement{NID: nid, SID: sid, Host: rng.Intn(25)})
			nid++
		}
	}
	ov, err := sflow.BuildOverlay(under, placements, compat)
	if err != nil {
		return err
	}
	src := ov.InstancesOf(source)[0]

	fmt.Fprintln(w, "media-streaming federation: DAG flow graph vs single service path")
	fmt.Fprintf(w, "pipeline: %d stages, %d streams; overlay: %d instances\n\n",
		req.NumServices(), req.NumDependencies(), ov.NumInstances())

	res, err := sflow.Federate(ov, req, src, sflow.Options{})
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "sFlow stage placement:")
	for _, sid := range req.Services() {
		inst, _ := res.Flow.Assigned(sid)
		fmt.Fprintf(w, "  %-16s -> instance %d\n", serviceName[sid], inst)
	}
	fmt.Fprintf(w, "sFlow quality: bandwidth %d Kbit/s, latency %d us\n\n",
		res.Metric.Bandwidth, res.Metric.Latency)

	// The single-service-path algorithm cannot express the parallel
	// video/audio branches: it federates only the main chain and leaves
	// the other branch out, which it reports as a partial federation.
	spFlow, _, err := sflow.ServicePath(ov, req, src)
	if err != nil && !errors.Is(err, sflow.ErrPartialFederation) {
		return err
	}
	fmt.Fprintf(w, "service-path placement covers %d of %d stages (complete: %v):\n",
		spFlow.NumAssigned(), req.NumServices(), spFlow.Complete(req))
	for _, sid := range req.Services() {
		if inst, ok := spFlow.Assigned(sid); ok {
			fmt.Fprintf(w, "  %-16s -> instance %d\n", serviceName[sid], inst)
		} else {
			fmt.Fprintf(w, "  %-16s -> (not federated)\n", serviceName[sid])
		}
	}

	// And the paper's headline: with the SAME stage placement, executing
	// the video and audio branches in parallel (DAG critical path) never
	// takes longer than forcing them into one sequential service path —
	// routed latencies obey the triangle inequality, so the sequential
	// detour through the other branch can only add delay.
	sequential, err := sflow.PathRequirement(
		source, demuxer, videoTranscoder, audioTranscoder, muxer, encryptor, client)
	if err != nil {
		return err
	}
	seqCompat := sflow.NewCompatibility()
	for _, e := range sequential.Edges() {
		seqCompat.Allow(e[0], e[1])
	}
	// Rebuild the overlay with the sequential compatibility so the chain
	// is routable end to end, then evaluate sFlow's placement on it.
	seqOv, err := sflow.BuildOverlay(under, placements, seqCompat)
	if err != nil {
		return err
	}
	seqMetric, err := sflow.EvaluateAssignment(seqOv, sequential, res.Flow.Assignment())
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "\nsame placement, parallel DAG latency: %6d us\n", res.Metric.Latency)
	fmt.Fprintf(w, "same placement, sequentialised:       %6d us\n", seqMetric.Latency)
	if res.Metric.Latency <= seqMetric.Latency {
		fmt.Fprintln(w, "-> interleaved branches beat the sequential service path, as the paper argues")
	}
	return nil
}
