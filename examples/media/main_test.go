package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestMediaOutput(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"media-streaming federation", "VideoTranscoder", "(not federated)",
		"interleaved branches beat the sequential service path",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}
