// Provision: resource efficiency under contention. Identical federation
// requests arrive one after another over a shared overlay; each admitted
// request reserves its demanded bandwidth along every stream it uses, and
// later requests only see the residual capacity. The example counts how many
// requests each federation algorithm can admit before the overlay saturates
// — the operational meaning of "resource-efficient" in the paper's title.
package main

import (
	"errors"
	"fmt"
	"io"
	"log"
	"math/rand"
	"os"

	"sflow"
)

func main() {
	if err := run(os.Stdout); err != nil {
		log.Fatal(err)
	}
}

func run(w io.Writer) error {
	sc, err := sflow.GenerateScenario(sflow.ScenarioConfig{
		Seed: 5, NetworkSize: 30, Services: 6,
		InstancesPerService: 3, Kind: sflow.KindGeneral,
	})
	if err != nil {
		return err
	}
	const demand = 150 // Kbit/s per request

	fmt.Fprintln(w, "admission under contention: identical requests, 150 Kbit/s each")
	fmt.Fprintf(w, "overlay: %d instances, %d service links\n\n",
		sc.Overlay.NumInstances(), sc.Overlay.NumLinks())

	algs := []struct {
		name string
		alg  sflow.FederationAlgorithm
	}{
		{"sflow (distributed)", sflow.SFlowAlgorithm(sflow.Options{})},
		{"heuristic (central)", sflow.HeuristicAlgorithm()},
		{"fixed", sflow.FixedAlgorithm()},
		{"random", sflow.RandomAlgorithm(rand.New(rand.NewSource(1)))},
	}
	for _, a := range algs {
		p := sflow.NewProvisioner(sc.Overlay)
		admitted := 0
		for {
			_, err := p.Admit(sc.Req, sc.SourceNID, demand, a.alg)
			if errors.Is(err, sflow.ErrRejected) {
				break
			}
			if err != nil {
				return err
			}
			admitted++
			if admitted >= 500 {
				break
			}
		}
		fmt.Fprintf(w, "  %-20s admitted %3d requests (%d Kbit/s aggregate)\n",
			a.name, admitted, p.AggregateDemand())
	}

	// Peek at how sFlow's placements drift as the overlay fills up.
	fmt.Fprintln(w, "\nsFlow placements as capacity drains (first vs last admission):")
	p := sflow.NewProvisioner(sc.Overlay)
	var first, last *sflow.Admission
	for {
		a, err := p.Admit(sc.Req, sc.SourceNID, demand, sflow.SFlowAlgorithm(sflow.Options{}))
		if err != nil {
			break
		}
		if first == nil {
			first = a
		}
		last = a
	}
	if first != nil && last != nil {
		fmt.Fprintf(w, "  first: %v (bottleneck %d)\n", first.Flow, first.Metric.Bandwidth)
		fmt.Fprintf(w, "  last:  %v (bottleneck %d)\n", last.Flow, last.Metric.Bandwidth)
	}
	return nil
}
