package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestProvisionOutput(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"admission under contention", "sflow (distributed)", "random",
		"first:", "last:",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}
