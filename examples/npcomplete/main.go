// NP-complete: Theorem 1 of the paper, end to end. A SAT formula is reduced
// to a Maximum Service Flow Graph instance: each clause becomes a service
// populated with one instance per literal; edges between complementary
// literals are too narrow to use. A service flow graph meeting the bandwidth
// threshold exists exactly when the formula is satisfiable — demonstrated
// here on the paper's own example formula and on an unsatisfiable one.
package main

import (
	"fmt"
	"io"
	"log"
	"os"

	"sflow"
)

func main() {
	if err := run(os.Stdout); err != nil {
		log.Fatal(err)
	}
}

func run(w io.Writer) error {
	// The formula of Fig 7: U = {x, y, z, w},
	// C = {{x,y,z,w}, {!x,y,!z}, {x,!y,w}, {!y,z}}.
	f := sflow.NewSATFormula(4)
	for _, cl := range [][]sflow.SATLiteral{
		{1, 2, 3, 4},
		{-1, 2, -3},
		{1, -2, 4},
		{-2, 3},
	} {
		if err := f.AddClause(cl...); err != nil {
			return err
		}
	}
	if err := demo(w, f); err != nil {
		return err
	}

	// And an unsatisfiable formula: (x) & (!x) & (x | !x).
	g := sflow.NewSATFormula(1)
	for _, cl := range [][]sflow.SATLiteral{{1}, {-1}, {1, -1}} {
		if err := g.AddClause(cl...); err != nil {
			return err
		}
	}
	return demo(w, g)
}

func demo(w io.Writer, f *sflow.SATFormula) error {
	fmt.Fprintf(w, "formula: %v\n", f)
	in, err := sflow.ReduceSATToMSFG(f)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "gadget:  %d clause services, %d literal instances, %d weighted edges\n",
		in.Req.NumServices(), in.Overlay.NumInstances(), in.Overlay.NumLinks())

	feasible, chosen, assign := in.Decide()
	_, dpllSAT := f.Solve()
	fmt.Fprintf(w, "MSFG decision: flow graph with min edge weight >= %d exists: %v\n", 2, feasible)
	fmt.Fprintf(w, "DPLL decision: satisfiable: %v\n", dpllSAT)
	if feasible != dpllSAT {
		return fmt.Errorf("theorem violated — the reduction is broken")
	}
	if feasible {
		fmt.Fprintln(w, "selected literal per clause:")
		for _, sid := range in.Req.Services() {
			nid := chosen[sid]
			fmt.Fprintf(w, "  clause %d -> instance %d encoding literal %v\n", sid, nid, in.LitOf[nid])
		}
		fmt.Fprintf(w, "extracted assignment %v satisfies the formula: %v\n", assign, f.Satisfies(assign))
	}
	fmt.Fprintln(w)
	return nil
}
