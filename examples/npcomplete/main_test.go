package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestNPCompleteOutput(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"MSFG decision: flow graph with min edge weight >= 2 exists: true",
		"MSFG decision: flow graph with min edge weight >= 2 exists: false",
		"satisfies the formula: true",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}
