package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestQuickstartOutput(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"requirement:", "sFlow flow graph:", "optimal flow graph:",
		"correctness coefficient:",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}
