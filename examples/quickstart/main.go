// Quickstart: generate a random service overlay scenario, run the
// distributed sFlow federation, and compare the result against the global
// optimum.
package main

import (
	"fmt"
	"io"
	"log"
	"os"

	"sflow"
)

func main() {
	if err := run(os.Stdout); err != nil {
		log.Fatal(err)
	}
}

func run(w io.Writer) error {
	// A reproducible workload: a 30-node underlying network carrying a
	// 6-service DAG requirement with 3 candidate instances per service.
	sc, err := sflow.GenerateScenario(sflow.ScenarioConfig{
		Seed:                42,
		NetworkSize:         30,
		Services:            6,
		InstancesPerService: 3,
		Kind:                sflow.KindGeneral,
	})
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "requirement: %v (shape: %s)\n", sc.Req, sc.Req.Shape())
	fmt.Fprintf(w, "overlay:     %d instances, %d service links\n\n",
		sc.Overlay.NumInstances(), sc.Overlay.NumLinks())

	// Run the distributed sFlow algorithm: the consumer injects the
	// requirement at the source instance; sfederate messages propagate on
	// a discrete-event-simulated network until the sink reports back.
	res, err := sflow.Federate(sc.Overlay, sc.Req, sc.SourceNID, sflow.Options{})
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "sFlow flow graph: %v\n", res.Flow)
	fmt.Fprintf(w, "  bandwidth %d Kbit/s, latency %d us\n", res.Metric.Bandwidth, res.Metric.Latency)
	fmt.Fprintf(w, "  %d messages, %d local computations, virtual time %d us\n\n",
		res.Stats.Messages, res.Stats.LocalComputations, res.Stats.VirtualTime)

	// Compare with the (exponential) global optimum.
	opt, optMetric, err := sflow.Optimal(sc.Overlay, sc.Req, sc.SourceNID)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "optimal flow graph: %v\n", opt)
	fmt.Fprintf(w, "  bandwidth %d Kbit/s, latency %d us\n", optMetric.Bandwidth, optMetric.Latency)
	fmt.Fprintf(w, "correctness coefficient: %.2f\n", res.Flow.CorrectnessCoefficient(opt))
	return nil
}
