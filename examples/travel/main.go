// Travel: the paper's running example (Figs 1–5). A travel engine feeds
// airline, hotel and attraction services whose outputs are converted by
// currency, map and translator services before reaching a travel agency —
// a general DAG requirement with splits and merges, federated over an
// overlay with multiple instances per service (e.g. two competing airline
// back-ends).
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"math/rand"
	"os"

	"sflow"
)

// Service identifiers of the travel scenario.
const (
	travelEngine = iota + 1
	airline
	hotel
	attraction
	currency
	mapSvc
	translator
	agency
)

var serviceName = map[int]string{
	travelEngine: "TravelEngine",
	airline:      "Airline",
	hotel:        "Hotel",
	attraction:   "Attraction",
	currency:     "Currency",
	mapSvc:       "Map",
	translator:   "Translator",
	agency:       "Agency",
}

func main() {
	emitDOT := flag.Bool("dot", false, "emit the federated flow graph as Graphviz DOT and exit")
	flag.Parse()
	if err := run(os.Stdout, *emitDOT); err != nil {
		log.Fatal(err)
	}
}

func run(w io.Writer, emitDOT bool) error {

	// The requirement: airline and hotel results are converted by the
	// currency service; hotel and attraction locations feed the map;
	// attraction descriptions are translated; everything merges at the
	// agency (compare Fig 5 of the paper).
	req, err := sflow.RequirementFromEdges([][2]int{
		{travelEngine, airline}, {travelEngine, hotel}, {travelEngine, attraction},
		{airline, currency}, {hotel, currency},
		{hotel, mapSvc}, {attraction, mapSvc},
		{attraction, translator},
		{currency, agency}, {mapSvc, agency}, {translator, agency},
	})
	if err != nil {
		return err
	}

	// A 20-node ISP-like underlay; service instances are placed on it and
	// the overlay is derived with the latency-routed link metrics.
	rng := rand.New(rand.NewSource(7))
	under, err := sflow.GenerateNetwork(rng, sflow.NetworkConfig{
		Nodes: 20, ExtraLinks: 12, MinBandwidth: 200, MaxBandwidth: 10000,
	})
	if err != nil {
		return err
	}
	// Compatibility is derived from the services' typed interfaces, not
	// hand-enumerated: a service can feed another when its outputs match
	// the other's inputs (the paper's semantic definition).
	reg := sflow.NewServiceRegistry()
	for _, d := range []sflow.ServiceDescription{
		{SID: travelEngine, Name: "TravelEngine", Outputs: []sflow.ServiceType{"query"}},
		{SID: airline, Name: "Airline", Inputs: []sflow.ServiceType{"query"}, Outputs: []sflow.ServiceType{"prices"}},
		{SID: hotel, Name: "Hotel", Inputs: []sflow.ServiceType{"query"}, Outputs: []sflow.ServiceType{"prices", "location"}},
		{SID: attraction, Name: "Attraction", Inputs: []sflow.ServiceType{"query"}, Outputs: []sflow.ServiceType{"location", "attraction-info"}},
		{SID: currency, Name: "Currency", Inputs: []sflow.ServiceType{"prices"}, Outputs: []sflow.ServiceType{"local-prices"}},
		{SID: mapSvc, Name: "Map", Inputs: []sflow.ServiceType{"location"}, Outputs: []sflow.ServiceType{"map"}},
		{SID: translator, Name: "Translator", Inputs: []sflow.ServiceType{"attraction-info"}, Outputs: []sflow.ServiceType{"translated"}},
		{SID: agency, Name: "Agency", Inputs: []sflow.ServiceType{"local-prices", "map", "translated"}},
	} {
		if err := reg.Register(d); err != nil {
			return err
		}
	}
	// Every requirement dependency must be type-sound.
	if err := reg.Validate(req.Edges()); err != nil {
		return err
	}
	compat := reg.Compatibility()
	// Two instances of every service except the consumer-facing ends
	// (think "Delta Airlines" and "Northwest Airlines" for the airline
	// service).
	var placements []sflow.Placement
	nid := 0
	for _, sid := range req.Services() {
		n := 2
		if sid == travelEngine || sid == agency {
			n = 1
		}
		for k := 0; k < n; k++ {
			placements = append(placements, sflow.Placement{NID: nid, SID: sid, Host: rng.Intn(20)})
			nid++
		}
	}
	ov, err := sflow.BuildOverlay(under, placements, compat)
	if err != nil {
		return err
	}
	source := ov.InstancesOf(travelEngine)[0]

	res, err := sflow.Federate(ov, req, source, sflow.Options{})
	if err != nil {
		return err
	}
	if emitDOT {
		fmt.Fprint(w, sflow.FlowDOT(ov, res.Flow))
		return nil
	}

	fmt.Fprintln(w, "travel-agency federation (the paper's running example)")
	fmt.Fprintf(w, "overlay: %d instances, %d service links on a %d-node network\n\n",
		ov.NumInstances(), ov.NumLinks(), under.Size())
	fmt.Fprintln(w, "sFlow selected instances:")
	for _, sid := range req.Services() {
		inst, _ := res.Flow.Assigned(sid)
		fmt.Fprintf(w, "  %-13s -> instance %d (host %d)\n", serviceName[sid], inst, hostOf(ov, inst))
	}
	fmt.Fprintf(w, "\nend-to-end: bandwidth %d Kbit/s, latency %d us\n",
		res.Metric.Bandwidth, res.Metric.Latency)
	fmt.Fprintf(w, "protocol:   %d messages, %d re-computations, virtual time %d us\n\n",
		res.Stats.Messages, res.Stats.Recomputations, res.Stats.VirtualTime)

	// How do the controls fare on the same scenario?
	_, fixedMetric, err := sflow.Fixed(ov, req, source)
	if err != nil {
		return err
	}
	_, randMetric, err := sflow.RandomPlacement(ov, req, source, rand.New(rand.NewSource(1)))
	if err != nil {
		return err
	}
	_, optMetric, err := sflow.Optimal(ov, req, source)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "comparison (bandwidth Kbit/s / latency us):")
	fmt.Fprintf(w, "  optimal: %6d / %d\n", optMetric.Bandwidth, optMetric.Latency)
	fmt.Fprintf(w, "  sflow:   %6d / %d\n", res.Metric.Bandwidth, res.Metric.Latency)
	fmt.Fprintf(w, "  fixed:   %6d / %d\n", fixedMetric.Bandwidth, fixedMetric.Latency)
	fmt.Fprintf(w, "  random:  %6d / %d\n", randMetric.Bandwidth, randMetric.Latency)

	// Optional services (Fig 2 of the paper): the attraction information
	// may flow through EITHER the map OR the translator service; the
	// better-performing topology is preferably selected.
	spec := sflow.NewChoiceSpec()
	for _, step := range []error{
		spec.AddTerm(travelEngine, travelEngine),
		spec.AddTerm(attraction, attraction),
		spec.AddTerm(99 /* map-or-translator slot */, mapSvc, translator),
		spec.AddTerm(agency, agency),
		spec.Connect(travelEngine, attraction),
		spec.Connect(attraction, 99),
		spec.Connect(99, agency),
	} {
		if step != nil {
			return step
		}
	}
	pick, err := sflow.BestChoice(ov, spec, source,
		func(o *sflow.Overlay, r *sflow.Requirement, s int) (*sflow.FlowGraph, sflow.Metric, error) {
			fr, err := sflow.Federate(o, r, s, sflow.Options{})
			if err != nil {
				return nil, sflow.Metric{}, err
			}
			return fr.Flow, fr.Metric, nil
		})
	if err != nil {
		return err
	}
	chosen := "Map"
	if pick.Req.Has(translator) {
		chosen = "Translator"
	}
	fmt.Fprintf(w, "\noptional services (Fig 2): Map-or-Translator resolved to %s "+
		"(bandwidth %d Kbit/s; %d of %d expansions feasible)\n",
		chosen, pick.Metric.Bandwidth, pick.Feasible, pick.Considered)
	return nil
}

func hostOf(ov *sflow.Overlay, nid int) int {
	inst, _ := ov.Instance(nid)
	return inst.Host
}
