package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestTravelOutput(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, false); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"travel-agency federation", "TravelEngine", "Agency",
		"comparison (bandwidth", "optional services (Fig 2)",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}

func TestTravelDOT(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, true); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "digraph flowgraph") {
		t.Fatalf("dot output = %q", buf.String()[:30])
	}
}
