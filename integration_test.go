package sflow_test

import (
	"errors"
	"math/rand"
	"testing"

	"sflow"
)

// TestIntegrationFullStack drives the complete system end to end through the
// public API: a generated workload federated over real TCP sockets with
// link-state-built views, validated against the optimum, then repaired after
// a failure, and finally provisioned repeatedly until saturation.
func TestIntegrationFullStack(t *testing.T) {
	sc, err := sflow.GenerateScenario(sflow.ScenarioConfig{
		Seed: 1234, NetworkSize: 20, Services: 6,
		InstancesPerService: 3, Kind: sflow.KindGeneral,
	})
	if err != nil {
		t.Fatal(err)
	}

	// 1. Distributed federation over loopback TCP with link-state views.
	rec := sflow.NewTrace()
	res, err := sflow.Federate(sc.Overlay, sc.Req, sc.SourceNID, sflow.Options{
		Loopback: true, LinkState: true, Trace: rec,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Flow.Validate(sc.Req, sc.Overlay); err != nil {
		t.Fatalf("flow invalid: %v", err)
	}
	if rec.Len() == 0 {
		t.Fatal("no trace events")
	}

	// 2. Quality sanity against the global optimum.
	opt, optMetric, err := sflow.Optimal(sc.Overlay, sc.Req, sc.SourceNID)
	if err != nil {
		t.Fatal(err)
	}
	if res.Metric.Better(optMetric) {
		t.Fatalf("distributed %+v beats optimal %+v", res.Metric, optMetric)
	}
	if cc := res.Flow.CorrectnessCoefficient(opt); cc < 0.5 {
		t.Fatalf("correctness %v suspiciously low", cc)
	}

	// 3. Fail a placed instance and repair with minimal churn.
	victimSID := sc.Req.TopoOrder()[1]
	victim, _ := res.Flow.Assigned(victimSID)
	rep, err := sflow.Repair(sc.Overlay, sc.Req, res.Flow, []int{victim}, sflow.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.Flow.Validate(sc.Req, sc.Overlay); err != nil {
		t.Fatalf("repaired flow invalid: %v", err)
	}
	if nid, _ := rep.Flow.Assigned(victimSID); nid == victim {
		t.Fatal("victim still placed on failed instance")
	}

	// 4. Provision the repaired requirement until the overlay saturates.
	p := sflow.NewProvisioner(sc.Overlay)
	admitted := 0
	for {
		_, err := p.Admit(sc.Req, sc.SourceNID, 200, sflow.SFlowAlgorithm(sflow.Options{}))
		if errors.Is(err, sflow.ErrRejected) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		admitted++
		if admitted > 1000 {
			t.Fatal("admission never saturates")
		}
	}
	if admitted == 0 {
		t.Fatal("nothing admitted")
	}
}

// TestIntegrationAlgorithmInvariants sweeps every federation algorithm over
// a matrix of scenario shapes and asserts the cross-cutting invariants:
// results validate, nothing beats the optimum, and the quality ordering
// optimal >= heuristic and optimal >= sflow holds.
func TestIntegrationAlgorithmInvariants(t *testing.T) {
	kinds := []sflow.ScenarioKind{
		sflow.KindPath, sflow.KindDisjoint, sflow.KindSplitMerge,
		sflow.KindGeneral, sflow.KindTree,
	}
	for _, kind := range kinds {
		for seed := int64(0); seed < 4; seed++ {
			sc, err := sflow.GenerateScenario(sflow.ScenarioConfig{
				Seed: seed, NetworkSize: 16, Services: 6,
				InstancesPerService: 2, Kind: kind,
			})
			if err != nil {
				t.Fatal(err)
			}
			_, optMetric, err := sflow.Optimal(sc.Overlay, sc.Req, sc.SourceNID)
			if err != nil {
				t.Fatalf("%v seed %d: optimal: %v", kind, seed, err)
			}

			res, err := sflow.Federate(sc.Overlay, sc.Req, sc.SourceNID, sflow.Options{})
			if err != nil {
				t.Fatalf("%v seed %d: sflow: %v", kind, seed, err)
			}
			check(t, kind, seed, "sflow", sc, res.Flow, res.Metric, optMetric)

			hFlow, hMetric, err := sflow.Heuristic(sc.Overlay, sc.Req, sc.SourceNID)
			if err != nil {
				t.Fatalf("%v seed %d: heuristic: %v", kind, seed, err)
			}
			check(t, kind, seed, "heuristic", sc, hFlow, hMetric, optMetric)

			fFlow, fMetric, err := sflow.Fixed(sc.Overlay, sc.Req, sc.SourceNID)
			if err != nil {
				t.Fatalf("%v seed %d: fixed: %v", kind, seed, err)
			}
			check(t, kind, seed, "fixed", sc, fFlow, fMetric, optMetric)

			rFlow, rMetric, err := sflow.RandomPlacement(sc.Overlay, sc.Req, sc.SourceNID,
				rand.New(rand.NewSource(seed)))
			if err != nil {
				t.Fatalf("%v seed %d: random: %v", kind, seed, err)
			}
			check(t, kind, seed, "random", sc, rFlow, rMetric, optMetric)
		}
	}
}

func check(t *testing.T, kind sflow.ScenarioKind, seed int64, alg string,
	sc *sflow.Scenario, fg *sflow.FlowGraph, m, opt sflow.Metric) {
	t.Helper()
	if err := fg.Validate(sc.Req, sc.Overlay); err != nil {
		t.Fatalf("%v seed %d: %s flow invalid: %v", kind, seed, alg, err)
	}
	if m != fg.Quality(sc.Req) {
		t.Fatalf("%v seed %d: %s metric inconsistent", kind, seed, alg)
	}
	if m.Better(opt) {
		t.Fatalf("%v seed %d: %s %+v beats optimal %+v", kind, seed, alg, m, opt)
	}
}
