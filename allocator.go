package sflow

import (
	"time"

	"sflow/internal/core"
	"sflow/internal/overlay"
	"sflow/internal/provision"
	"sflow/internal/qos"
)

// Multi-tenant admission surface: many concurrent tenants competing for the
// finite link bandwidth and instance capacity of one shared overlay, with
// priority classes, quotas, optional preemption and TTL leases. See the
// README "Multi-tenant admission" section for a walkthrough and DESIGN.md
// for the architecture.

// Allocator is a concurrent, multi-tenant admission controller over one
// shared overlay. All methods are safe for concurrent use: operations
// serialize through a single writer loop, and the recorded Log replays
// sequentially to the exact same state (see ReplayAdmissions).
type Allocator struct {
	a *provision.Allocator
}

// AllocatorOptions tunes NewAllocator. The zero value is a single-class
// allocator with no quotas, no preemption and no instance capacity bound.
type AllocatorOptions struct {
	// Classes is the number of priority classes; requests carry a class in
	// [0, Classes), larger meaning more important. 0 defaults to 1.
	Classes int
	// Quotas caps concurrently admitted tenants per class (indexed by
	// class; missing or zero entries mean unlimited).
	Quotas []int
	// Preempt lets a request that would otherwise be rejected for capacity
	// evict strictly-lower-class tenants (lowest class first, youngest
	// first), restoring them exactly if the request still does not fit.
	Preempt bool
	// InstanceCapacity bounds concurrent admissions per service instance
	// (0 = unlimited).
	InstanceCapacity int
	// Metrics, when non-nil, receives per-class admission counters, an
	// active-tenant gauge and a residual-utilization histogram.
	Metrics *Metrics
}

// AdmitOptions describes one admission request.
type AdmitOptions struct {
	// Algorithm is the registry name federating the request over the
	// residual overlay — any Algorithms() name, or "sflow" for the
	// distributed protocol. Empty defaults to "heuristic".
	Algorithm string
	// Demand is the bandwidth (Kbit/s) reserved along every stream of the
	// admitted flow graph. Must be positive.
	Demand int64
	// Class is the request's priority class in [0, AllocatorOptions.Classes).
	Class int
	// TTL, when positive, turns the admission into a lease that
	// auto-releases after it elapses.
	TTL time.Duration
	// Tag is an opaque label recorded in the admission log. Empty defaults
	// to the algorithm name, which keeps the log self-describing for
	// ReplayAdmissions.
	Tag string
	// Solve tunes the federation algorithm run (Rng, ClusterK, Workers,
	// Metrics), exactly as for Solve.
	Solve SolveOptions
}

// Aliases into the provisioning layer, so the machine-readable admission
// vocabulary is usable without importing internal packages.
type (
	// Ticket is one admitted tenant: the handle Release takes.
	Ticket = provision.Ticket
	// TenantInfo is a point-in-time snapshot of one admitted tenant.
	TenantInfo = provision.TenantInfo
	// ClassCounters is the fairness ledger of one priority class.
	ClassCounters = provision.ClassCounters
	// AdmissionEvent is one entry of an allocator's recorded serialization.
	AdmissionEvent = provision.Event
	// AdmissionError is the typed rejection: it unwraps to ErrRejected and
	// carries a machine-readable RejectReason.
	AdmissionError = provision.AdmissionError
	// RejectReason is the machine-readable cause of a rejection.
	RejectReason = provision.RejectReason
)

// The rejection reasons an AdmissionError carries.
const (
	// ReasonQuota: the request's class is at its admission quota.
	ReasonQuota = provision.ReasonQuota
	// ReasonCompute: a required instance is at its compute capacity.
	ReasonCompute = provision.ReasonCompute
	// ReasonNoFlow: no feasible flow graph exists on the residual overlay.
	ReasonNoFlow = provision.ReasonNoFlow
	// ReasonBandwidth: a flow graph exists but cannot sustain the demand.
	ReasonBandwidth = provision.ReasonBandwidth
)

// Errors of the admission surface.
var (
	// ErrAllocatorClosed is returned by Allocator methods after Close.
	ErrAllocatorClosed = provision.ErrClosed
	// ErrNoTicket is returned by Release for a ticket that is not active
	// (already released, expired, or preempted).
	ErrNoTicket = provision.ErrNoTicket
)

// NewAllocator starts a multi-tenant admission controller over a private
// residual copy of ov. Call Close when done.
func NewAllocator(ov *Overlay, opts AllocatorOptions) *Allocator {
	return &Allocator{a: provision.NewAllocator(ov, provision.AllocatorOptions{
		Classes:          opts.Classes,
		Quotas:           opts.Quotas,
		Preempt:          opts.Preempt,
		InstanceCapacity: opts.InstanceCapacity,
		Metrics:          opts.Metrics,
	})}
}

// Admit submits one admission request. On success the returned Ticket is the
// release handle; on rejection the error is an *AdmissionError
// (errors.Is(err, ErrRejected) holds) carrying the machine-readable reason.
func (al *Allocator) Admit(req *Requirement, src int, opts AdmitOptions) (*Ticket, error) {
	name := opts.Algorithm
	if name == "" {
		name = "heuristic"
	}
	tag := opts.Tag
	if tag == "" {
		tag = name
	}
	return al.a.Admit(provision.AdmitRequest{
		Req:    req,
		Src:    src,
		Demand: opts.Demand,
		Class:  opts.Class,
		TTL:    opts.TTL,
		Tag:    tag,
		Alg:    RegistryAlgorithm(name, opts.Solve),
	})
}

// Release returns ticket id's reserved capacity to the residual overlay.
func (al *Allocator) Release(id uint64) error { return al.a.Release(id) }

// Tenants returns the currently admitted tenants sorted by ticket ID.
func (al *Allocator) Tenants() []TenantInfo { return al.a.Tenants() }

// Classes returns the per-class fairness ledger, indexed by class.
func (al *Allocator) Classes() []ClassCounters { return al.a.ClassCounters() }

// Log returns a copy of the recorded serialization: the exact sequential
// order admissions, rejections and departures were decided in.
func (al *Allocator) Log() []AdmissionEvent { return al.a.Log() }

// Residual returns a snapshot clone of the residual overlay.
func (al *Allocator) Residual() *Overlay { return al.a.Residual() }

// Utilization returns the reserved share of the pristine overlay's aggregate
// bandwidth, in percent.
func (al *Allocator) Utilization() int64 { return al.a.Utilization() }

// Close stops the allocator's writer loop and TTL timers. Concurrent callers
// blocked on it get ErrAllocatorClosed. Safe to call more than once.
func (al *Allocator) Close() { al.a.Close() }

// ReplayAdmissions re-executes a recorded admission log sequentially over
// the pristine overlay: the equivalence oracle pinning concurrent admission
// to its recorded serialization. algFor rebuilds the (deterministic)
// federation algorithm of each admit/reject event; nil derives it from
// Event.Tag via RegistryAlgorithm — the default Admit leaves Tag as the
// algorithm name, so logs produced that way replay with algFor nil. It fails
// on the first divergence; on success the returned allocator's tenants,
// class counters and residual overlay equal the live allocator's final
// state.
func ReplayAdmissions(ov *Overlay, opts AllocatorOptions, log []AdmissionEvent, algFor func(AdmissionEvent) FederationAlgorithm) (*Allocator, error) {
	if algFor == nil {
		algFor = func(ev AdmissionEvent) FederationAlgorithm {
			return RegistryAlgorithm(ev.Tag, SolveOptions{})
		}
	}
	a, err := provision.Replay(ov, provision.AllocatorOptions{
		Classes:          opts.Classes,
		Quotas:           opts.Quotas,
		Preempt:          opts.Preempt,
		InstanceCapacity: opts.InstanceCapacity,
	}, log, func(ev provision.Event) provision.Algorithm { return algFor(ev) })
	if err != nil {
		return nil, err
	}
	return &Allocator{a: a}, nil
}

// RegistryAlgorithm adapts any registered algorithm name to the
// FederationAlgorithm shape provisioning and workload replay take: every
// Algorithms() name dispatches through Solve with the given options, and
// "sflow" runs the distributed protocol (core Options derived from
// opts.Metrics; use SFlowAlgorithm for full protocol tuning). An unknown
// name surfaces as ErrUnknownAlgorithm when the algorithm first runs.
func RegistryAlgorithm(name string, opts SolveOptions) FederationAlgorithm {
	if name == "sflow" {
		return federateAlgorithm(Options{Metrics: opts.Metrics})
	}
	return func(ov *Overlay, req *Requirement, src int) (*FlowGraph, Metric, error) {
		sol, err := Solve(name, ov, req, src, opts)
		if err != nil {
			return nil, qos.Unreachable, err
		}
		return sol.Flow, sol.Metric, nil
	}
}

// federateAlgorithm adapts the distributed protocol with explicit Options.
func federateAlgorithm(opts Options) FederationAlgorithm {
	return func(ov *overlay.Overlay, req *Requirement, src int) (*FlowGraph, Metric, error) {
		res, err := core.Federate(ov, req, src, opts)
		if err != nil {
			return nil, qos.Unreachable, err
		}
		return res.Flow, res.Metric, nil
	}
}
