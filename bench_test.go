// Benchmarks regenerating the paper's evaluation. One benchmark per Figure
// 10 panel (the paper has no numbered result tables — Table 1 is pseudocode)
// plus the ablations from DESIGN.md and micro-benchmarks of the core
// algorithms. Reproduced series values are attached as custom benchmark
// metrics so `go test -bench` output carries the actual figures.
package sflow_test

import (
	"fmt"
	"math/rand"
	"runtime"
	"testing"

	"sflow"
)

// benchCfg is the sweep used inside benchmarks: the paper's sizes with a
// modest trial count so one benchmark iteration stays in the tens of
// milliseconds.
func benchCfg() sflow.ExperimentConfig {
	return sflow.ExperimentConfig{Sizes: []int{10, 20, 30, 40, 50}, Trials: 6, Seed: 1}
}

// reportSeries attaches the last point (network size 50) of every column as
// a custom metric.
func reportSeries(b *testing.B, s *sflow.Series, unit string) {
	b.Helper()
	last := s.Points[len(s.Points)-1]
	for _, col := range s.Columns {
		b.ReportMetric(last.Values[col], col+"_"+unit)
	}
}

// BenchmarkFig10aCorrectness regenerates Fig 10(a): correctness coefficient
// vs network size for sFlow, fixed, random and service-path.
func BenchmarkFig10aCorrectness(b *testing.B) {
	var s *sflow.Series
	for i := 0; i < b.N; i++ {
		var err error
		s, err = sflow.Fig10a(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
	}
	reportSeries(b, s, "cc@50")
}

// BenchmarkFig10bTime regenerates Fig 10(b): computation time vs network
// size, sFlow vs the global optimal on simple requirements.
func BenchmarkFig10bTime(b *testing.B) {
	var s *sflow.Series
	for i := 0; i < b.N; i++ {
		var err error
		s, err = sflow.Fig10b(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
	}
	reportSeries(b, s, "us@50")
}

// BenchmarkFig10cLatency regenerates Fig 10(c): end-to-end flow-graph
// latency vs network size.
func BenchmarkFig10cLatency(b *testing.B) {
	var s *sflow.Series
	for i := 0; i < b.N; i++ {
		var err error
		s, err = sflow.Fig10c(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
	}
	reportSeries(b, s, "us@50")
}

// BenchmarkFig10dBandwidth regenerates Fig 10(d): end-to-end flow-graph
// bandwidth vs network size.
func BenchmarkFig10dBandwidth(b *testing.B) {
	var s *sflow.Series
	for i := 0; i < b.N; i++ {
		var err error
		s, err = sflow.Fig10d(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
	}
	reportSeries(b, s, "kbps@50")
}

// BenchmarkAblationLookahead measures sFlow correctness vs local-view radius
// (DESIGN.md experiment A1).
func BenchmarkAblationLookahead(b *testing.B) {
	cfg := benchCfg()
	cfg.Sizes = []int{20, 40}
	var s *sflow.Series
	for i := 0; i < b.N; i++ {
		var err error
		s, err = sflow.AblationLookahead(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	reportSeries(b, s, "cc@40")
}

// BenchmarkAblationReduction measures the reduction heuristics' contribution
// (DESIGN.md experiment A2).
func BenchmarkAblationReduction(b *testing.B) {
	cfg := benchCfg()
	cfg.Sizes = []int{20, 40}
	var s *sflow.Series
	for i := 0; i < b.N; i++ {
		var err error
		s, err = sflow.AblationReduction(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	reportSeries(b, s, "ratio@40")
}

// BenchmarkSweepWorkers compares the evaluation sweep at one worker (the
// historical sequential harness) against the host's GOMAXPROCS: the same
// seeded cells, fanned out. Output is byte-identical either way (see
// TestCSVDeterministicAcrossWorkerCounts); only wall-clock should move, and
// on a multi-core host the parallel sweep should win roughly linearly in
// cores. Fig 10(a) is the heaviest panel (exact solve per cell), so it is
// the honest workload for the comparison.
func BenchmarkSweepWorkers(b *testing.B) {
	for _, workers := range []int{1, multiWorkers()} {
		cfg := benchCfg()
		cfg.Workers = workers
		b.Run(fmt.Sprintf("fig10a/workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := sflow.Fig10a(cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// multiWorkers is the parallel leg of the workers=1 comparison: the host's
// GOMAXPROCS, floored at 4 so the comparison still exercises the pool
// machinery (overhead included) on a single-core runner.
func multiWorkers() int {
	if n := runtime.GOMAXPROCS(0); n >= 2 {
		return n
	}
	return 4
}

// benchScenario generates one scenario per network size for the micro
// benchmarks.
func benchScenario(b *testing.B, size int, kind sflow.ScenarioKind) *sflow.Scenario {
	b.Helper()
	sc, err := sflow.GenerateScenario(sflow.ScenarioConfig{
		Seed: int64(size), NetworkSize: size, Services: 6,
		InstancesPerService: 3, Kind: kind,
	})
	if err != nil {
		b.Fatal(err)
	}
	return sc
}

// BenchmarkFederate measures one full distributed federation (DES transport)
// at each of the paper's network sizes.
func BenchmarkFederate(b *testing.B) {
	for _, size := range []int{10, 30, 50} {
		sc := benchScenario(b, size, sflow.KindGeneral)
		b.Run(fmt.Sprintf("n=%d", size), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := sflow.Federate(sc.Overlay, sc.Req, sc.SourceNID, sflow.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFederateConcurrent measures the goroutine-transport federation.
func BenchmarkFederateConcurrent(b *testing.B) {
	sc := benchScenario(b, 30, sflow.KindGeneral)
	for i := 0; i < b.N; i++ {
		if _, err := sflow.Federate(sc.Overlay, sc.Req, sc.SourceNID, sflow.Options{Concurrent: true}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkOptimal measures the exhaustive global search.
func BenchmarkOptimal(b *testing.B) {
	for _, size := range []int{10, 30, 50} {
		sc := benchScenario(b, size, sflow.KindGeneral)
		b.Run(fmt.Sprintf("n=%d", size), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := sflow.Optimal(sc.Overlay, sc.Req, sc.SourceNID); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkBaseline measures the polynomial baseline on path requirements.
func BenchmarkBaseline(b *testing.B) {
	sc := benchScenario(b, 50, sflow.KindPath)
	for i := 0; i < b.N; i++ {
		if _, _, err := sflow.Baseline(sc.Overlay, sc.Req, sc.SourceNID); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHeuristic measures the centralised reduction heuristic.
func BenchmarkHeuristic(b *testing.B) {
	sc := benchScenario(b, 50, sflow.KindGeneral)
	for i := 0; i < b.N; i++ {
		if _, _, err := sflow.Heuristic(sc.Overlay, sc.Req, sc.SourceNID); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkControls measures the three control algorithms.
func BenchmarkControls(b *testing.B) {
	sc := benchScenario(b, 30, sflow.KindGeneral)
	b.Run("fixed", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := sflow.Fixed(sc.Overlay, sc.Req, sc.SourceNID); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("random", func(b *testing.B) {
		rng := rand.New(rand.NewSource(1))
		for i := 0; i < b.N; i++ {
			if _, _, err := sflow.RandomPlacement(sc.Overlay, sc.Req, sc.SourceNID, rng); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("servicepath", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := sflow.ServicePath(sc.Overlay, sc.Req, sc.SourceNID); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkScenarioGeneration measures workload generation itself.
func BenchmarkScenarioGeneration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := sflow.GenerateScenario(sflow.ScenarioConfig{
			Seed: int64(i), NetworkSize: 50, Services: 6,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTheorem1 measures the SAT -> MSFG reduction and decision on the
// paper's Fig 7 formula.
func BenchmarkTheorem1(b *testing.B) {
	f := sflow.NewSATFormula(4)
	for _, cl := range [][]sflow.SATLiteral{
		{1, 2, 3, 4}, {-1, 2, -3}, {1, -2, 4}, {-2, 3},
	} {
		if err := f.AddClause(cl...); err != nil {
			b.Fatal(err)
		}
	}
	for i := 0; i < b.N; i++ {
		in, err := sflow.ReduceSATToMSFG(f)
		if err != nil {
			b.Fatal(err)
		}
		if ok, _, _ := in.Decide(); !ok {
			b.Fatal("paper formula should be satisfiable")
		}
	}
}

// BenchmarkAdmission measures the admission-capacity experiment (DESIGN.md
// experiment A3): requests admitted before saturation per algorithm.
func BenchmarkAdmission(b *testing.B) {
	cfg := benchCfg()
	cfg.Sizes = []int{20, 40}
	cfg.Trials = 3
	var s *sflow.Series
	for i := 0; i < b.N; i++ {
		var err error
		s, err = sflow.AdmissionCapacity(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	reportSeries(b, s, "reqs@40")
}

// BenchmarkBlocking measures the Poisson-churn blocking experiment
// (DESIGN.md experiment A8).
func BenchmarkBlocking(b *testing.B) {
	cfg := sflow.ExperimentConfig{Trials: 2, Seed: 1, Services: 5, Instances: 2}
	var s *sflow.Series
	for i := 0; i < b.N; i++ {
		var err error
		s, err = sflow.BlockingUnderLoad(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	reportSeries(b, s, "pblock@40")
}

// BenchmarkRepairChurn measures the failure-repair experiment (DESIGN.md
// experiment A7).
func BenchmarkRepairChurn(b *testing.B) {
	cfg := benchCfg()
	cfg.Sizes = []int{20, 40}
	cfg.Trials = 3
	var s *sflow.Series
	for i := 0; i < b.N; i++ {
		var err error
		s, err = sflow.RepairChurn(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	reportSeries(b, s, "at40")
}

// BenchmarkWorkloadSimulate measures mixed-traffic replay over a provisioned
// overlay.
func BenchmarkWorkloadSimulate(b *testing.B) {
	sc := benchScenario(b, 30, sflow.KindGeneral)
	reqs, err := sflow.GenerateWorkload(sc.Req, sc.SourceNID, sflow.WorkloadConfig{
		Seed: 1, Count: 60, MeanInterarrival: 20_000, MeanHolding: 80_000,
		DemandMin: 50, DemandMax: 250,
	})
	if err != nil {
		b.Fatal(err)
	}
	alg := sflow.FixedAlgorithm()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sflow.SimulateWorkload(sc.Overlay, reqs, alg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHierarchical measures the cluster-based federation.
func BenchmarkHierarchical(b *testing.B) {
	sc := benchScenario(b, 30, sflow.KindGeneral)
	for i := 0; i < b.N; i++ {
		if _, _, err := sflow.Hierarchical(sc.Overlay, sc.Req, sc.SourceNID, 4); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRepair measures failure repair on a completed federation.
func BenchmarkRepair(b *testing.B) {
	sc := benchScenario(b, 30, sflow.KindGeneral)
	res, err := sflow.Federate(sc.Overlay, sc.Req, sc.SourceNID, sflow.Options{})
	if err != nil {
		b.Fatal(err)
	}
	victimSID := sc.Req.TopoOrder()[1]
	victim, _ := res.Flow.Assigned(victimSID)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sflow.Repair(sc.Overlay, sc.Req, res.Flow, []int{victim}, sflow.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFederateLoopbackTCP measures the protocol over real sockets.
func BenchmarkFederateLoopbackTCP(b *testing.B) {
	sc := benchScenario(b, 20, sflow.KindGeneral)
	for i := 0; i < b.N; i++ {
		if _, err := sflow.Federate(sc.Overlay, sc.Req, sc.SourceNID, sflow.Options{Loopback: true}); err != nil {
			b.Fatal(err)
		}
	}
}
