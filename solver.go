package sflow

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"sflow/internal/abstract"
	"sflow/internal/baseline"
	"sflow/internal/cluster"
	"sflow/internal/control"
	"sflow/internal/core"
	"sflow/internal/exact"
	"sflow/internal/metrics"
	"sflow/internal/qos"
	"sflow/internal/reduce"
)

// Metrics is a registry of counters, gauges and histograms that the library
// fills in as it works: protocol messages and bytes, Dijkstra relaxations,
// abstract-graph builds, admissions, sweep cells. A nil *Metrics anywhere one
// is accepted disables instrumentation at (near) zero cost. All updates are
// atomic and safe for concurrent use.
type Metrics = metrics.Registry

// MetricsSnapshot is a point-in-time, deterministically ordered copy of a
// Metrics registry. Text() renders everything; StableText() omits volatile
// (wall-clock / scheduling dependent) metrics, so for a fixed seed it is
// byte-identical at any worker count. JSON() is the machine-readable form.
type MetricsSnapshot = metrics.Snapshot

// NewMetrics returns an empty metrics registry. Pass it in Options.Metrics,
// SolveOptions.Metrics or ExperimentConfig.Metrics and read it back with its
// Snapshot method.
func NewMetrics() *Metrics { return metrics.New() }

// Unreachable is the Metric reported when no route (or no complete
// federation) exists; its Reachable method returns false.
var Unreachable = qos.Unreachable

// Solution is the outcome of one centralised federation algorithm: the
// computed service flow graph and its end-to-end quality.
type Solution struct {
	Flow   *FlowGraph
	Metric Metric
}

// SolveOptions tunes Solve. The zero value is ready to use.
type SolveOptions struct {
	// Rng drives the "random" algorithm. Nil defaults to a fixed seed so
	// Solve stays reproducible by default.
	Rng *rand.Rand
	// ClusterK is the cluster count of the "hierarchical" algorithm
	// (0 defaults to 4, clamped to the overlay's instance count).
	ClusterK int
	// Workers bounds the all-pairs shortest-widest fan-out behind the
	// abstract-graph build: 0 uses runtime.GOMAXPROCS(0), 1 forces the
	// sequential computation.
	Workers int
	// Metrics, when non-nil, collects instrumentation from the build and
	// the algorithm run.
	Metrics *Metrics
	// Lazy routes demand-driven: no all-pairs computation runs up front, and
	// only the shortest-widest rows the chosen algorithm actually reads —
	// the rows of instances populating service slots — are computed. Answers
	// are byte-identical to eager mode for every algorithm; the cost stops
	// scaling with overlay size, which is what makes 10k–100k-node overlays
	// interactive. For "hierarchical", Lazy prices clusters and solves the
	// intra-cluster problem from lazy tables.
	Lazy bool
	// Contracted switches the "hierarchical" algorithm to the large-overlay
	// fast path: O(E) BFS clustering, inter-cluster routing on the
	// contracted k-node cluster digraph, and a lazily expanded
	// instance-level solve inside the chosen clusters. Cluster pairs are
	// priced by their best boundary link rather than exact member-pair
	// routes, so flows may differ from the classic hierarchical algorithm
	// (they remain valid federations with exact instance-level routes).
	// Ignored by the other algorithms.
	Contracted bool
}

// ErrUnknownAlgorithm is returned by Solve for a name outside Algorithms().
var ErrUnknownAlgorithm = errors.New("sflow: unknown algorithm")

// ErrPartialFederation is the sentinel wrapped by every error that carries a
// partial federation: the algorithm placed only part of the requirement
// (ServicePath on a non-path requirement federates just the main chain; a
// distributed run under faults times out or exhausts its retry budget).
// Match with errors.Is and recover the partial flow graph with errors.As on
// *PartialFederationError.
var ErrPartialFederation = core.ErrPartialFederation

// PartialFederationError reports that an algorithm could not satisfy the full
// requirement and carries what it did federate — plus, for distributed runs,
// the unresponsive instances (feed them to RepairPartial) and the protocol
// stats. It unwraps to ErrPartialFederation and to its Cause when set.
type PartialFederationError = core.PartialFederationError

// buildAbstract builds the service abstract graph behind every centralised
// algorithm, mapping build failures (a required service without instances)
// onto the facade's (nil, Unreachable, error) convention.
func buildAbstract(ov *Overlay, req *Requirement, opts SolveOptions) (*abstract.Graph, error) {
	if opts.Lazy {
		return abstract.BuildLazy(ov, req, opts.Workers, opts.Metrics)
	}
	return abstract.BuildWorkersMetrics(ov, req, opts.Workers, opts.Metrics)
}

// abstractSolver runs one named algorithm over a pre-built abstract graph.
type abstractSolver func(ag *abstract.Graph, src int, opts SolveOptions) (*Solution, error)

// abstractSolvers maps algorithm names to implementations sharing one
// abstract-graph build. "hierarchical" is dispatched separately by Solve
// because the cluster hierarchy works on the raw overlay.
var abstractSolvers = map[string]abstractSolver{
	"baseline": func(ag *abstract.Graph, src int, _ SolveOptions) (*Solution, error) {
		r, err := baseline.Solve(ag, src, nil)
		if err != nil {
			return nil, err
		}
		return &Solution{Flow: r.Flow, Metric: r.Metric}, nil
	},
	"heuristic": func(ag *abstract.Graph, src int, _ SolveOptions) (*Solution, error) {
		r, err := reduce.Solve(ag, src, nil)
		if err != nil {
			return nil, err
		}
		return &Solution{Flow: r.Flow, Metric: r.Metric}, nil
	},
	"optimal": func(ag *abstract.Graph, src int, _ SolveOptions) (*Solution, error) {
		r, err := exact.Solve(ag, src, exact.Options{})
		if err != nil {
			return nil, err
		}
		return &Solution{Flow: r.Flow, Metric: r.Metric}, nil
	},
	"fixed": func(ag *abstract.Graph, src int, _ SolveOptions) (*Solution, error) {
		r, err := control.Fixed(ag, src)
		if err != nil {
			return nil, err
		}
		return &Solution{Flow: r.Flow, Metric: r.Metric}, nil
	},
	"random": func(ag *abstract.Graph, src int, opts SolveOptions) (*Solution, error) {
		rng := opts.Rng
		if rng == nil {
			rng = rand.New(rand.NewSource(1))
		}
		r, err := control.Random(ag, src, rng)
		if err != nil {
			return nil, err
		}
		return &Solution{Flow: r.Flow, Metric: r.Metric}, nil
	},
	"servicepath": func(ag *abstract.Graph, src int, _ SolveOptions) (*Solution, error) {
		r, err := control.ServicePath(ag, src)
		if err != nil {
			return nil, err
		}
		if !r.Complete {
			return nil, &PartialFederationError{Flow: r.Flow}
		}
		return &Solution{Flow: r.Flow, Metric: r.Metric}, nil
	},
}

// Algorithms lists the names Solve accepts, sorted.
func Algorithms() []string {
	names := make([]string, 0, len(abstractSolvers)+1)
	for name := range abstractSolvers {
		names = append(names, name)
	}
	names = append(names, "hierarchical")
	sort.Strings(names)
	return names
}

// Solve runs the named centralised federation algorithm over the overlay:
//
//   - "baseline": the paper's polynomial algorithm for path requirements
//   - "heuristic": the reduction heuristic for general DAGs
//   - "optimal": the exhaustive branch-and-bound global optimum
//   - "fixed": widest-direct-link greedy control
//   - "random": random feasible placement control (seed via SolveOptions.Rng)
//   - "servicepath": end-to-end single-path control; on non-path
//     requirements it returns a *PartialFederationError carrying the
//     main-chain flow graph
//   - "hierarchical": cluster-based divide-and-conquer federation
//     (cluster count via SolveOptions.ClusterK)
//
// All algorithms except "hierarchical" share a single abstract-graph build.
// The returned Solution is non-nil exactly when the error is nil.
func Solve(name string, ov *Overlay, req *Requirement, src int, opts SolveOptions) (*Solution, error) {
	if name == "hierarchical" {
		k := opts.ClusterK
		if k == 0 {
			k = 4
		}
		if n := ov.NumInstances(); k > n {
			k = n
		}
		var r *cluster.Result
		var err error
		if opts.Contracted {
			r, err = cluster.FederateContracted(ov, req, src, k, opts.Workers)
		} else {
			r, err = cluster.FederateWith(ov, req, src, k, cluster.Options{Lazy: opts.Lazy, Workers: opts.Workers})
		}
		if err != nil {
			return nil, err
		}
		return &Solution{Flow: r.Flow, Metric: r.Metric}, nil
	}
	fn, ok := abstractSolvers[name]
	if !ok {
		return nil, fmt.Errorf("%w %q (have %s)", ErrUnknownAlgorithm,
			name, strings.Join(Algorithms(), ", "))
	}
	ag, err := buildAbstract(ov, req, opts)
	if err != nil {
		return nil, err
	}
	return fn(ag, src, opts)
}

// legacySolve adapts Solve to the historical (flow, metric, error) wrapper
// shape, surfacing partial federations as their flow graph plus the typed
// error.
func legacySolve(name string, ov *Overlay, req *Requirement, src int, opts SolveOptions) (*FlowGraph, Metric, error) {
	sol, err := Solve(name, ov, req, src, opts)
	if err != nil {
		var partial *PartialFederationError
		if errors.As(err, &partial) {
			return partial.Flow, qos.Unreachable, err
		}
		return nil, qos.Unreachable, err
	}
	return sol.Flow, sol.Metric, nil
}
