package sflow_test

import (
	"errors"
	"math/rand"
	"strings"
	"testing"

	"sflow"
)

// pathScenario generates a seeded path-requirement scenario every algorithm
// in the registry (including baseline and servicepath) can solve.
func pathScenario(t *testing.T) *sflow.Scenario {
	t.Helper()
	sc, err := sflow.GenerateScenario(sflow.ScenarioConfig{
		Seed: 5, NetworkSize: 20, Services: 5,
		InstancesPerService: 3, Kind: sflow.KindPath,
	})
	if err != nil {
		t.Fatal(err)
	}
	return sc
}

func TestSolveRegistryCompleteness(t *testing.T) {
	sc := pathScenario(t)
	names := sflow.Algorithms()
	if len(names) != 7 {
		t.Fatalf("Algorithms() = %v, want 7 names", names)
	}
	for _, name := range names {
		sol, err := sflow.Solve(name, sc.Overlay, sc.Req, sc.SourceNID, sflow.SolveOptions{})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if sol == nil || sol.Flow == nil {
			t.Fatalf("%s: nil solution", name)
		}
		if !sol.Metric.Reachable() {
			t.Fatalf("%s: unreachable metric on a solvable path scenario", name)
		}
		if !sol.Flow.Complete(sc.Req) {
			t.Fatalf("%s: incomplete flow graph", name)
		}
	}
}

func TestSolveUnknownAlgorithm(t *testing.T) {
	sc := pathScenario(t)
	_, err := sflow.Solve("simulated-annealing", sc.Overlay, sc.Req, sc.SourceNID, sflow.SolveOptions{})
	if !errors.Is(err, sflow.ErrUnknownAlgorithm) {
		t.Fatalf("got %v, want ErrUnknownAlgorithm", err)
	}
	for _, name := range sflow.Algorithms() {
		if !strings.Contains(err.Error(), name) {
			t.Fatalf("error %q should list %q", err, name)
		}
	}
}

// TestSolveMatchesLegacyWrappers pins the deprecated per-algorithm functions
// to the registry: on a seeded scenario each wrapper and its Solve equivalent
// must choose the same instances with the same quality.
func TestSolveMatchesLegacyWrappers(t *testing.T) {
	sc := pathScenario(t)
	type legacy func() (*sflow.FlowGraph, sflow.Metric, error)
	cases := []struct {
		name   string
		opts   sflow.SolveOptions
		legacy legacy
	}{
		{"baseline", sflow.SolveOptions{}, func() (*sflow.FlowGraph, sflow.Metric, error) {
			return sflow.Baseline(sc.Overlay, sc.Req, sc.SourceNID)
		}},
		{"heuristic", sflow.SolveOptions{}, func() (*sflow.FlowGraph, sflow.Metric, error) {
			return sflow.Heuristic(sc.Overlay, sc.Req, sc.SourceNID)
		}},
		{"optimal", sflow.SolveOptions{}, func() (*sflow.FlowGraph, sflow.Metric, error) {
			return sflow.Optimal(sc.Overlay, sc.Req, sc.SourceNID)
		}},
		{"fixed", sflow.SolveOptions{}, func() (*sflow.FlowGraph, sflow.Metric, error) {
			return sflow.Fixed(sc.Overlay, sc.Req, sc.SourceNID)
		}},
		{"random", sflow.SolveOptions{Rng: rand.New(rand.NewSource(9))}, func() (*sflow.FlowGraph, sflow.Metric, error) {
			return sflow.RandomPlacement(sc.Overlay, sc.Req, sc.SourceNID, rand.New(rand.NewSource(9)))
		}},
		{"servicepath", sflow.SolveOptions{}, func() (*sflow.FlowGraph, sflow.Metric, error) {
			return sflow.ServicePath(sc.Overlay, sc.Req, sc.SourceNID)
		}},
		{"hierarchical", sflow.SolveOptions{ClusterK: 4}, func() (*sflow.FlowGraph, sflow.Metric, error) {
			return sflow.Hierarchical(sc.Overlay, sc.Req, sc.SourceNID, 4)
		}},
	}
	for _, tc := range cases {
		sol, err := sflow.Solve(tc.name, sc.Overlay, sc.Req, sc.SourceNID, tc.opts)
		if err != nil {
			t.Fatalf("Solve(%s): %v", tc.name, err)
		}
		fg, m, err := tc.legacy()
		if err != nil {
			t.Fatalf("legacy %s: %v", tc.name, err)
		}
		if sol.Metric != m {
			t.Fatalf("%s: Solve metric %+v != legacy %+v", tc.name, sol.Metric, m)
		}
		want := fg.Assignment()
		got := sol.Flow.Assignment()
		if len(got) != len(want) {
			t.Fatalf("%s: assignment sizes differ: %v vs %v", tc.name, got, want)
		}
		for sid, nid := range want {
			if got[sid] != nid {
				t.Fatalf("%s: service %d on instance %d (Solve) vs %d (legacy)",
					tc.name, sid, got[sid], nid)
			}
		}
	}
}

// TestSolveInstrumentation checks Solve fills a registry passed through
// SolveOptions.
func TestSolveInstrumentation(t *testing.T) {
	sc := pathScenario(t)
	reg := sflow.NewMetrics()
	if _, err := sflow.Solve("heuristic", sc.Overlay, sc.Req, sc.SourceNID,
		sflow.SolveOptions{Metrics: reg}); err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	text := snap.StableText()
	for _, key := range []string{"abstract_builds_total", "qos_relaxations_total"} {
		if !strings.Contains(text, key) {
			t.Fatalf("snapshot missing %s:\n%s", key, text)
		}
	}
}

// TestMetricsSnapshotDeterminism pins the tentpole acceptance criterion: an
// instrumented fixed-seed Fig10a sweep yields a non-empty metrics snapshot
// whose stable rendering is byte-identical at 1 and 4 workers.
func TestMetricsSnapshotDeterminism(t *testing.T) {
	sweep := func(workers int) string {
		reg := sflow.NewMetrics()
		_, err := sflow.Fig10a(sflow.ExperimentConfig{
			Sizes: []int{10, 20}, Trials: 3, Seed: 1,
			Workers: workers, Metrics: reg,
		})
		if err != nil {
			t.Fatal(err)
		}
		return reg.Snapshot().StableText()
	}
	s1 := sweep(1)
	s4 := sweep(4)
	if !strings.Contains(s1, "counter exp_cells_total 6") {
		t.Fatalf("snapshot missing the sweep's cell counter:\n%s", s1)
	}
	if !strings.Contains(s1, "core_messages_delivered_total") {
		t.Fatalf("snapshot missing protocol counters:\n%s", s1)
	}
	if s1 != s4 {
		t.Fatalf("stable snapshot differs between 1 and 4 workers:\n--- workers=1\n%s\n--- workers=4\n%s", s1, s4)
	}
	// The volatile wall-clock histogram must render in the full text but
	// stay out of the stable one.
	if strings.Contains(s1, "exp_cell_wall_us") {
		t.Fatal("volatile metric leaked into StableText")
	}
}
