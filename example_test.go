package sflow_test

import (
	"fmt"
	"math/rand"

	"sflow"
)

// ExampleFederate runs the distributed sFlow algorithm on a hand-built
// diamond: the merge service has a throughput-balanced instance (41) that a
// greedy first-hop choice would miss.
func ExampleFederate() {
	ov := sflow.NewOverlay()
	for _, in := range [][2]int{{10, 1}, {20, 2}, {30, 3}, {40, 4}, {41, 4}} {
		if err := ov.AddInstance(in[0], in[1], -1); err != nil {
			panic(err)
		}
	}
	for _, l := range [][4]int64{
		{10, 20, 100, 10}, {10, 30, 100, 10},
		{20, 40, 100, 10}, {30, 40, 10, 10},
		{20, 41, 80, 10}, {30, 41, 80, 10},
	} {
		if err := ov.AddLink(int(l[0]), int(l[1]), l[2], l[3]); err != nil {
			panic(err)
		}
	}
	req, err := sflow.RequirementFromEdges([][2]int{{1, 2}, {1, 3}, {2, 4}, {3, 4}})
	if err != nil {
		panic(err)
	}
	res, err := sflow.Federate(ov, req, 10, sflow.Options{})
	if err != nil {
		panic(err)
	}
	fmt.Println(res.Flow)
	fmt.Printf("bandwidth %d latency %d\n", res.Metric.Bandwidth, res.Metric.Latency)
	// Output:
	// flow{1/10 2/20 3/30 4/41}
	// bandwidth 80 latency 20
}

// ExampleBaseline solves a single service path exactly with the paper's
// polynomial baseline algorithm.
func ExampleBaseline() {
	ov := sflow.NewOverlay()
	for _, in := range [][2]int{{1, 1}, {2, 2}, {3, 2}, {4, 3}} {
		if err := ov.AddInstance(in[0], in[1], -1); err != nil {
			panic(err)
		}
	}
	for _, l := range [][4]int64{
		{1, 2, 100, 1}, {2, 4, 10, 1}, // wide first hop, narrow after
		{1, 3, 50, 1}, {3, 4, 50, 1}, // balanced end to end
	} {
		if err := ov.AddLink(int(l[0]), int(l[1]), l[2], l[3]); err != nil {
			panic(err)
		}
	}
	req, err := sflow.PathRequirement(1, 2, 3)
	if err != nil {
		panic(err)
	}
	fg, m, err := sflow.Baseline(ov, req, 1)
	if err != nil {
		panic(err)
	}
	fmt.Println(fg, m.Bandwidth)
	// Output:
	// flow{1/1 2/3 3/4} 50
}

// ExampleGenerateScenario produces a reproducible workload and inspects it.
func ExampleGenerateScenario() {
	sc, err := sflow.GenerateScenario(sflow.ScenarioConfig{
		Seed: 42, NetworkSize: 20, Services: 5, InstancesPerService: 2,
	})
	if err != nil {
		panic(err)
	}
	fmt.Println(sc.Req.NumServices(), sc.Req.Shape(), sc.Overlay.SIDOf(sc.SourceNID) == sc.Req.Source())
	// Output:
	// 5 general true
}

// ExampleReduceSATToMSFG machine-checks Theorem 1 on a tiny formula.
func ExampleReduceSATToMSFG() {
	f := sflow.NewSATFormula(2)
	for _, cl := range [][]sflow.SATLiteral{{1, 2}, {-1}} {
		if err := f.AddClause(cl...); err != nil {
			panic(err)
		}
	}
	in, err := sflow.ReduceSATToMSFG(f)
	if err != nil {
		panic(err)
	}
	feasible, _, assign := in.Decide()
	_, dpll := f.Solve()
	fmt.Println(feasible, dpll, f.Satisfies(assign))
	// Output:
	// true true true
}

// ExampleNewProvisioner admits requests until the overlay saturates.
func ExampleNewProvisioner() {
	ov := sflow.NewOverlay()
	for _, in := range [][2]int{{1, 1}, {2, 2}} {
		if err := ov.AddInstance(in[0], in[1], -1); err != nil {
			panic(err)
		}
	}
	if err := ov.AddLink(1, 2, 100, 5); err != nil {
		panic(err)
	}
	req, err := sflow.PathRequirement(1, 2)
	if err != nil {
		panic(err)
	}
	p := sflow.NewProvisioner(ov)
	admitted := 0
	for {
		if _, err := p.Admit(req, 1, 30, sflow.HeuristicAlgorithm()); err != nil {
			break
		}
		admitted++
	}
	fmt.Println(admitted, p.AggregateDemand())
	// Output:
	// 3 90
}

// ExampleRandomPlacement shows the random control algorithm with a seeded
// generator.
func ExampleRandomPlacement() {
	sc, err := sflow.GenerateScenario(sflow.ScenarioConfig{
		Seed: 7, NetworkSize: 15, Services: 4, InstancesPerService: 2,
	})
	if err != nil {
		panic(err)
	}
	fg, m, err := sflow.RandomPlacement(sc.Overlay, sc.Req, sc.SourceNID, rand.New(rand.NewSource(1)))
	if err != nil {
		panic(err)
	}
	fmt.Println(fg.Complete(sc.Req), m.Reachable())
	// Output:
	// true true
}
