# Development entry points for the sflow reproduction.

GO ?= go

# Pinned linter + vulnerability scanner + fuzz budget, overridable from the
# environment/CI.
STATICCHECK_VERSION ?= 2025.1.1
GOVULNCHECK_VERSION ?= v1.1.4
FUZZTIME ?= 30s

# Bench gates tee the fresh benchmark output here so CI can upload it as an
# artifact when a gate fails (compare against the committed baseline offline).
FRESHDIR ?= .bench-fresh

.PHONY: all build test race race-hot race-session race-daemon race-admit race-reopt race-lazy check smoke cover cover-check bench bench-hotpath bench-json bench-check bench-kernel bench-admit bench-reopt reopt-check bench-lazy lazy-check serve-bench serve-check vet fmt fmt-check lint staticcheck vulncheck fuzz figures examples clean

all: build test

# Tier-1 gate: what CI runs on every PR. The equivalence-oracle property
# tests of the incremental session run race-instrumented on every gate, as
# does the serving daemon's concurrent-clients smoke.
check: build vet test race-session race-daemon race-admit race-reopt race-lazy smoke

# Race-instrumented end-to-end run of the metrics-enabled benchmark driver:
# a small Fig 10(a) sweep at several workers with a snapshot written, the
# cheapest whole-stack exercise of the observability layer.
smoke:
	$(GO) run -race ./cmd/sflowbench -fig 10a -sizes 10,20 -trials 2 -workers 4 -metrics /dev/null

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Race-check the packages that run worker pools and concurrent transports.
race-hot:
	$(GO) test -race ./internal/metrics/... ./internal/transport/... ./internal/core/... ./internal/experiments/... ./internal/qos/... ./internal/session/...

# Race-instrumented equivalence-oracle tests: the session's incremental
# flushes fan per-source recomputation out over a worker pool, so the oracle
# traces run under the race detector on every check (-short keeps the gate
# fast; the full 5x1000-event traces run in `make race-hot` and CI).
race-session:
	$(GO) test -race -short ./internal/session/ -run 'TestEquivalenceOracleTrace|TestBatchedEventsSingleFlush'

# Race-instrumented serving smoke: concurrent TCP clients solving against
# sflowd's epoch machinery while another client streams mutations, plus the
# root-level byte-equivalence battery between served and stateless solves.
race-daemon:
	$(GO) test -race ./internal/daemon/ -run 'TestConcurrentClientsUnderChurn|TestSolveOverTCPMatchesDirectComputation'
	$(GO) test -race . -run 'TestDaemonServingEquivalenceBattery'

# Race-instrumented multi-tenant admission oracle: many goroutines admitting,
# releasing and preempting through the capacity allocator — locally and over
# sflowd RPCs — must serialize to a sequential replay of the recorded log.
race-admit:
	$(GO) test -race ./internal/provision/ -run 'TestAllocator|TestConcurrentAdmissionMatchesSequentialReplay|TestReplay|TestSeededAdmitRelease'
	$(GO) test -race ./internal/daemon/ -run 'TestAdmitReleaseTenantsRPC|TestConcurrentAdmitRPCMatchesSequentialReplay'
	$(GO) test -race . -run 'TestAllocatorPublicAPI|TestReplayAdmissionsWithNilAlgFor'

# Race-instrumented lazy-routing battery: the single-flight row memoization
# is the one place concurrent readers share mutable state with a computing
# goroutine, so the qos lazy tests, the lazy churn oracle and the root
# byte-equivalence battery all run under the race detector on every check.
race-lazy:
	$(GO) test -race ./internal/qos/ -run 'TestLazy|TestIncrementalLazy|FuzzLazyInvalidation'
	$(GO) test -race -short ./internal/session/ -run 'TestLazyEquivalenceOracleTrace|TestLazySnapshotIsConsistentAndImmutable'
	$(GO) test -race -short . -run 'TestLazySolveByteIdentical|TestLazySessionSolveByteIdentical|TestContractedHierarchicalSolves'

# Race-instrumented re-optimization battery: the link-load ledger must
# deep-equal a from-scratch recount after any seeded interleaving, gated live
# migrations must never regress max utilization, and the daemon's background
# reoptimizer loop must relieve a hot link end-to-end over RPC.
race-reopt:
	$(GO) test -race ./internal/reopt/
	$(GO) test -race ./internal/provision/ -run 'TestMigrate|TestExpiryReleaseRaceKeepsLedgerExact|TestMigrationCarriesLease'
	$(GO) test -race ./internal/daemon/ -run 'TestLinksRPCTracksAdmittedLoad|TestReoptLoopRelievesHotLink'

cover:
	$(GO) test -coverprofile=cover.out ./...
	$(GO) tool cover -func=cover.out | tail -1

# Coverage floor gate: total statement coverage must not drop below the
# checked-in floor (coverage-floor.txt). Raise the floor when coverage
# genuinely improves; never lower it to make a PR pass.
cover-check: cover
	@total=$$($(GO) tool cover -func=cover.out | tail -1 | grep -Eo '[0-9]+\.[0-9]+'); \
	floor=$$(cat coverage-floor.txt); \
	ok=$$(awk -v t="$$total" -v f="$$floor" 'BEGIN { print (t >= f) ? 1 : 0 }'); \
	if [ "$$ok" != 1 ]; then echo "coverage $$total% below floor $$floor%"; exit 1; fi; \
	echo "coverage $$total% >= floor $$floor%"

bench:
	$(GO) test -bench=. -benchmem ./...

# Hot-path benchmark suite: the qos kernels (map oracle vs dense CSR engine)
# plus the session-level incremental-vs-rebuild benchmark. HOTBENCH is the
# selection the human-readable results/bench-hotpath.txt records; GATEBENCH
# is the stricter subset the CI regression gate enforces (kernels only —
# worker-scaling benchmarks are too scheduler-noisy to gate).
HOTBENCH  ?= BenchmarkWidestKernel|BenchmarkLatencyKernel|BenchmarkShortestWidest|BenchmarkShortestLatency|BenchmarkAllPairs|BenchmarkIncrementalFlush|BenchmarkSessionIncrementalVsRebuild
GATEBENCH ?= BenchmarkWidestKernel|BenchmarkLatencyKernel|BenchmarkShortestWidest|BenchmarkAllPairs
BENCHCOUNT ?= 3

bench-hotpath:
	$(GO) test -run '^$$' -bench '$(HOTBENCH)' -benchmem ./internal/qos/ ./internal/session/ | tee results/bench-hotpath.txt

# Machine-readable perf record (min ns/op over $(BENCHCOUNT) runs per
# benchmark). Regenerate and commit it whenever the hot path changes on
# purpose: it is the baseline `bench-check` gates against.
bench-json:
	$(GO) test -run '^$$' -bench '$(HOTBENCH)' -benchmem -count $(BENCHCOUNT) ./internal/qos/ ./internal/session/ \
		| $(GO) run ./cmd/benchjson -out results/BENCH_hotpath.json
	@echo "wrote results/BENCH_hotpath.json"

# CI benchmark-regression gate: rerun the gated kernels and fail if any is
# more than 25% slower than the committed baseline. CI machines differ from
# the baseline machine, so ratios are normalized by the map-oracle all-pairs
# benchmark — a calibration leg the CSR hot path does not touch.
bench-check:
	@mkdir -p $(FRESHDIR)
	$(GO) test -run '^$$' -bench '$(GATEBENCH)' -benchtime 0.2s -count $(BENCHCOUNT) ./internal/qos/ \
		| tee $(FRESHDIR)/bench-hotpath.txt \
		| $(GO) run ./cmd/benchjson -compare results/BENCH_hotpath.json \
			-match '$(GATEBENCH)' -normalize 'BenchmarkAllPairs/engine=map/n=120' -threshold 1.25

# Tiered-kernel gate: the per-row shortest-widest sweep across bandwidth
# palette sizes (tiers 1, 3, 6, 12 on a 2000-node GenerateLarge-shaped
# graph), gated against the committed BENCH_hotpath.json baseline. The tier
# sweep is what the phase-2 early exit and the monotone bucket queue exist
# for, so it gets its own CI leg; the same calibration normalization as
# bench-check cancels runner speed out. The sweep also matches HOTBENCH (the
# regex BenchmarkShortestWidest is a prefix of its name), so bench-json
# records its baseline alongside the other kernels.
KERNELBENCH ?= BenchmarkShortestWidestTiers|BenchmarkAllPairs
bench-kernel:
	@mkdir -p $(FRESHDIR)
	$(GO) test -run '^$$' -bench '$(KERNELBENCH)' -benchtime 0.2s -count $(BENCHCOUNT) ./internal/qos/ \
		| tee $(FRESHDIR)/bench-kernel.txt \
		| $(GO) run ./cmd/benchjson -compare results/BENCH_hotpath.json \
			-match 'BenchmarkShortestWidestTiers' -normalize 'BenchmarkAllPairs/engine=map/n=120' -threshold 1.25

# Admission-throughput record: sequential and parallel admit+release cycles
# through the capacity allocator, serialized with benchjson (min ns/op over
# $(BENCHCOUNT) runs). Regenerate and commit when the allocator changes on
# purpose; the file is a tracked perf record, not a CI gate — admission
# throughput is dominated by the federation solve, which bench-check already
# gates at the kernel level.
ADMITBENCH ?= BenchmarkAllocatorAdmitRelease
bench-admit:
	$(GO) test -run '^$$' -bench '$(ADMITBENCH)' -benchmem -count $(BENCHCOUNT) ./internal/provision/ \
		| $(GO) run ./cmd/benchjson -out results/BENCH_admit.json
	@echo "wrote results/BENCH_admit.json"

# Re-optimization benchmark record and gate: one gated live migration through
# the planner's mirror-session solve (BenchmarkPlannerMigration), normalized
# by a stateless abstract+reduce solve over the same topology
# (BenchmarkReoptCalibration) so runner speed cancels out. bench-reopt
# regenerates the committed baseline; reopt-check fails CI on a >25%
# regression.
REOPTBENCH ?= BenchmarkPlannerMigration|BenchmarkReoptCalibration
bench-reopt:
	$(GO) test -run '^$$' -bench '$(REOPTBENCH)' -benchmem -count $(BENCHCOUNT) ./internal/reopt/ \
		| $(GO) run ./cmd/benchjson -out results/BENCH_reopt.json
	@echo "wrote results/BENCH_reopt.json"

reopt-check:
	@mkdir -p $(FRESHDIR)
	$(GO) test -run '^$$' -bench '$(REOPTBENCH)' -benchtime 0.2s -count $(BENCHCOUNT) ./internal/reopt/ \
		| tee $(FRESHDIR)/bench-reopt.txt \
		| $(GO) run ./cmd/benchjson -compare results/BENCH_reopt.json \
			-match 'BenchmarkPlannerMigration' -normalize 'BenchmarkReoptCalibration' -threshold 1.25

# Large-overlay latency record and gate: one demand-driven federation against
# directly generated 10k- and 50k-node overlays (BenchmarkLazyFederate),
# normalized by the identical solve at 2k nodes (BenchmarkLazyCalibration) so
# runner speed cancels out. bench-lazy regenerates the committed baseline;
# lazy-check fails CI on a >25% regression. -benchtime 1x keeps the gate
# bounded: each 50k op is seconds, and min-over-$(BENCHCOUNT) runs absorbs
# scheduler noise.
LAZYBENCH ?= BenchmarkLazyFederate|BenchmarkLazyCalibration
bench-lazy:
	$(GO) test -run '^$$' -bench '$(LAZYBENCH)' -benchmem -benchtime 1x -count $(BENCHCOUNT) . \
		| $(GO) run ./cmd/benchjson -out results/BENCH_lazy.json
	@echo "wrote results/BENCH_lazy.json"

lazy-check:
	@mkdir -p $(FRESHDIR)
	$(GO) test -run '^$$' -bench '$(LAZYBENCH)' -benchtime 1x -count $(BENCHCOUNT) . \
		| tee $(FRESHDIR)/bench-lazy.txt \
		| $(GO) run ./cmd/benchjson -compare results/BENCH_lazy.json \
			-match 'BenchmarkLazyFederate' -normalize 'BenchmarkLazyCalibration' -threshold 1.25

# Serving benchmark: launch sflowd, drive it with SERVE_CLIENTS closed-loop
# sflowload clients for SERVE_DURATION, and record latency quantiles and
# throughput. serve-bench regenerates the committed baseline
# (results/BENCH_serving.json); serve-check reruns the same load and fails on
# a >25% regression of wall-clock-per-solve (inverse throughput), normalized
# by the in-process calibration solve so runner speed cancels out. The
# latency quantiles are recorded but not gated: closed-loop p50/p99 under a
# shared CI scheduler swing far more than real regressions do.
SERVE_CLIENTS  ?= 1000
SERVE_DURATION ?= 8s
SERVE_ALG      ?= heuristic
SERVEGATE      ?= BenchmarkServeSolve/alg=$(SERVE_ALG)/clients=$(SERVE_CLIENTS)/persolve

define run_serve_load
	tmp=$$(mktemp -d); \
	$(GO) build -o $$tmp/sflowd ./cmd/sflowd && \
	$(GO) build -o $$tmp/sflowload ./cmd/sflowload && \
	$$tmp/sflowd -addrfile $$tmp/addr & pid=$$!; \
	i=0; while [ ! -f $$tmp/addr ] && [ $$i -lt 100 ]; do sleep 0.1; i=$$((i+1)); done; \
	$$tmp/sflowload -addrfile $$tmp/addr -clients $(SERVE_CLIENTS) -duration $(SERVE_DURATION) -alg $(SERVE_ALG) \
		> $$tmp/bench.txt; status=$$?; \
	kill $$pid 2>/dev/null; wait $$pid 2>/dev/null; \
	[ $$status -eq 0 ] || { rm -rf $$tmp; exit $$status; }
endef

serve-bench:
	@$(run_serve_load); \
	$(GO) run ./cmd/benchjson -in $$tmp/bench.txt -out results/BENCH_serving.json; status=$$?; \
	rm -rf $$tmp; [ $$status -eq 0 ] || exit $$status; \
	echo "wrote results/BENCH_serving.json"

serve-check:
	@mkdir -p $(FRESHDIR); $(run_serve_load); \
	cp $$tmp/bench.txt $(FRESHDIR)/bench-serving.txt; \
	$(GO) run ./cmd/benchjson -in $$tmp/bench.txt -compare results/BENCH_serving.json \
		-match '$(SERVEGATE)' -normalize 'BenchmarkServeCalibration/alg=$(SERVE_ALG)' -threshold 1.25; status=$$?; \
	rm -rf $$tmp; exit $$status

vet:
	$(GO) vet ./...

fmt:
	gofmt -l -w .

# Fail (with the offending files listed) if anything is not gofmt-clean.
fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then echo "gofmt needed on:"; echo "$$out"; exit 1; fi

# Static analysis gate: formatting, go vet and a pinned staticcheck.
# staticcheck downloads on first use, so it needs network (CI always has it).
lint: fmt-check vet staticcheck

staticcheck:
	$(GO) run honnef.co/go/tools/cmd/staticcheck@$(STATICCHECK_VERSION) ./...

# Known-vulnerability scan of the module and its (stdlib) call graph, pinned
# like staticcheck. Downloads on first use, so it needs network (CI has it).
vulncheck:
	$(GO) run golang.org/x/vuln/cmd/govulncheck@$(GOVULNCHECK_VERSION) ./...

# Short-budget fuzzing of the codec trust boundaries (TCP frame reader,
# protocol wire codec and the reliability wrapper, CSR freeze round-trip),
# the two incremental-invalidation oracles (link-state views, lazy routing
# rows — the latter with a bounded LRU table running the same trace), and
# the bucket-vs-heap kernel equivalence over fuzz-built graphs.
fuzz:
	$(GO) test ./internal/transport -run '^$$' -fuzz FuzzReadFrame -fuzztime $(FUZZTIME)
	$(GO) test ./internal/transport -run '^$$' -fuzz FuzzFrameRoundTrip -fuzztime $(FUZZTIME)
	$(GO) test ./internal/core -run '^$$' -fuzz FuzzWireDecode -fuzztime $(FUZZTIME)
	$(GO) test ./internal/core -run '^$$' -fuzz FuzzWireRoundTrip -fuzztime $(FUZZTIME)
	$(GO) test ./internal/linkstate -run '^$$' -fuzz FuzzLinkstateIncremental -fuzztime $(FUZZTIME)
	$(GO) test ./internal/csr -run '^$$' -fuzz FuzzFreezeRoundTrip -fuzztime $(FUZZTIME)
	$(GO) test ./internal/qos -run '^$$' -fuzz FuzzLazyInvalidation -fuzztime $(FUZZTIME)
	$(GO) test ./internal/qos -run '^$$' -fuzz FuzzBucketQueue -fuzztime $(FUZZTIME)

# Regenerate every reproduced figure (tables + CSV + SVG under results/).
figures:
	$(GO) run ./cmd/sflowbench -fig all -trials 30 -csv results -svg results

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/travel
	$(GO) run ./examples/media
	$(GO) run ./examples/npcomplete
	$(GO) run ./examples/provision

# results/ holds committed reproduced figures — never delete it here.
clean:
	rm -f cover.out
	rm -rf $(FRESHDIR)
