# Development entry points for the sflow reproduction.

GO ?= go

# Pinned linter + fuzz budget, overridable from the environment/CI.
STATICCHECK_VERSION ?= 2025.1.1
FUZZTIME ?= 30s

.PHONY: all build test race race-hot race-session check smoke cover cover-check bench vet fmt fmt-check lint staticcheck fuzz figures examples clean

all: build test

# Tier-1 gate: what CI runs on every PR. The equivalence-oracle property
# tests of the incremental session run race-instrumented on every gate.
check: build vet test race-session smoke

# Race-instrumented end-to-end run of the metrics-enabled benchmark driver:
# a small Fig 10(a) sweep at several workers with a snapshot written, the
# cheapest whole-stack exercise of the observability layer.
smoke:
	$(GO) run -race ./cmd/sflowbench -fig 10a -sizes 10,20 -trials 2 -workers 4 -metrics /dev/null

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Race-check the packages that run worker pools and concurrent transports.
race-hot:
	$(GO) test -race ./internal/metrics/... ./internal/transport/... ./internal/core/... ./internal/experiments/... ./internal/qos/... ./internal/session/...

# Race-instrumented equivalence-oracle tests: the session's incremental
# flushes fan per-source recomputation out over a worker pool, so the oracle
# traces run under the race detector on every check (-short keeps the gate
# fast; the full 5x1000-event traces run in `make race-hot` and CI).
race-session:
	$(GO) test -race -short ./internal/session/ -run 'TestEquivalenceOracleTrace|TestBatchedEventsSingleFlush'

cover:
	$(GO) test -coverprofile=cover.out ./...
	$(GO) tool cover -func=cover.out | tail -1

# Coverage floor gate: total statement coverage must not drop below the
# checked-in floor (coverage-floor.txt). Raise the floor when coverage
# genuinely improves; never lower it to make a PR pass.
cover-check: cover
	@total=$$($(GO) tool cover -func=cover.out | tail -1 | grep -Eo '[0-9]+\.[0-9]+'); \
	floor=$$(cat coverage-floor.txt); \
	ok=$$(awk -v t="$$total" -v f="$$floor" 'BEGIN { print (t >= f) ? 1 : 0 }'); \
	if [ "$$ok" != 1 ]; then echo "coverage $$total% below floor $$floor%"; exit 1; fi; \
	echo "coverage $$total% >= floor $$floor%"

bench:
	$(GO) test -bench=. -benchmem ./...

vet:
	$(GO) vet ./...

fmt:
	gofmt -l -w .

# Fail (with the offending files listed) if anything is not gofmt-clean.
fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then echo "gofmt needed on:"; echo "$$out"; exit 1; fi

# Static analysis gate: formatting, go vet and a pinned staticcheck.
# staticcheck downloads on first use, so it needs network (CI always has it).
lint: fmt-check vet staticcheck

staticcheck:
	$(GO) run honnef.co/go/tools/cmd/staticcheck@$(STATICCHECK_VERSION) ./...

# Short-budget fuzzing of the two codec trust boundaries: the TCP frame
# reader and the protocol wire codec (including the reliability wrapper).
fuzz:
	$(GO) test ./internal/transport -run '^$$' -fuzz FuzzReadFrame -fuzztime $(FUZZTIME)
	$(GO) test ./internal/transport -run '^$$' -fuzz FuzzFrameRoundTrip -fuzztime $(FUZZTIME)
	$(GO) test ./internal/core -run '^$$' -fuzz FuzzWireDecode -fuzztime $(FUZZTIME)
	$(GO) test ./internal/core -run '^$$' -fuzz FuzzWireRoundTrip -fuzztime $(FUZZTIME)
	$(GO) test ./internal/linkstate -run '^$$' -fuzz FuzzLinkstateIncremental -fuzztime $(FUZZTIME)

# Regenerate every reproduced figure (tables + CSV + SVG under results/).
figures:
	$(GO) run ./cmd/sflowbench -fig all -trials 30 -csv results -svg results

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/travel
	$(GO) run ./examples/media
	$(GO) run ./examples/npcomplete
	$(GO) run ./examples/provision

# results/ holds committed reproduced figures — never delete it here.
clean:
	rm -f cover.out
