# Development entry points for the sflow reproduction.

GO ?= go

.PHONY: all build test race cover bench vet fmt figures examples clean

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

cover:
	$(GO) test -coverprofile=cover.out ./...
	$(GO) tool cover -func=cover.out | tail -1

bench:
	$(GO) test -bench=. -benchmem ./...

vet:
	$(GO) vet ./...

fmt:
	gofmt -l -w .

# Regenerate every reproduced figure (tables + CSV + SVG under results/).
figures:
	$(GO) run ./cmd/sflowbench -fig all -trials 30 -csv results -svg results

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/travel
	$(GO) run ./examples/media
	$(GO) run ./examples/npcomplete
	$(GO) run ./examples/provision

clean:
	rm -rf results cover.out
